(** WaMPDE envelope-following simulation (Section 4's
    initial-condition mode — the solver behind the paper's VCO
    experiments, Figs. 7–12).

    The two-scale WaMPDE (eq. (16))

    [omega(t2) dq(xhat)/dt1 + dq(xhat)/dt2 + f(t2, xhat) = 0]

    is discretized by collocation on an odd uniform [t1] grid (period
    1; spectral or 4th-order finite-difference differentiation) and
    advanced in [t2] with the theta method.  Each step solves, by
    damped Newton, for the [n1] grid states {e and} the local
    frequency [omega], closed by a {!Phase} condition.

    The [t1] axis is warped: [xhat] has period exactly 1, so [omega]
    is the instantaneous oscillation frequency in cycles per time
    unit. *)

open Linalg

type options = {
  n1 : int;  (** odd number of [t1] collocation points *)
  theta : float;  (** 1 = backward Euler, 0.5 = trapezoidal *)
  phase : Phase.t;
  differentiation : [ `Spectral | `Fd4 ];  (** [t1] derivative scheme *)
  newton : Nonlin.Newton.options;
  solver : Structured.strategy;
      (** linear-solver path for the collocation Newton systems: dense
          LU, matrix-free preconditioned GMRES, or size-based [Auto] *)
  rescue : bool;
      (** when the chord iteration fails a step, cold-start the
          {!Nonlin.Polyalg} trust-region/PTC cascade on the same step
          system before reporting [Step_failure] (default [true];
          successes bump the [envelope.rescues] counter) *)
  precond_cache : string option;
      (** when set (to a circuit-identifying prefix), the Krylov path
          fetches its block preconditioner through
          {!Structured.make_precond_cached}, keyed by the prefix, [n1]
          and log-bucketed [omega]/[h2 theta] — so repeated solves of
          the same circuit (a job-serving batch) share factorizations.
          [None] (the default) keeps the uncached per-iterate build. *)
}

(** [default_options ()] — [n1 = 25], trapezoidal, derivative phase
    condition on component 0, spectral differentiation,
    [Structured.auto] solver selection, rescue cascade on, no
    preconditioner cache. *)
val default_options :
  ?n1:int ->
  ?phase:Phase.t ->
  ?solver:Structured.strategy ->
  ?rescue:bool ->
  ?precond_cache:string ->
  unit ->
  options

type step_failure = {
  t2 : float;  (** slow time of the failed step *)
  h2 : float;  (** attempted slow step size *)
  residual : float;  (** last Newton residual infinity-norm *)
  iterations : int;  (** Newton iterations spent before giving up *)
  residual_history : float array;
      (** residual infinity-norm after each accepted Newton iterate,
          oldest first — shows whether the iteration stalled, diverged
          or oscillated *)
}

(** Raised by {!simulate} when a step's Newton iteration fails;
    {!simulate_adaptive} catches it internally and retries with a
    smaller step.  Mirrors [Transient.Step_failure]. *)
exception Step_failure of step_failure

(** Raised by {!simulate_controlled} when its [?preempt] callback asks
    the march to yield: the run stops on an accepted-step boundary at
    slow time [t2], {e after} writing a forced checkpoint (when a
    checkpoint path was given), so [?resume] continues bit-compatibly
    with the uninterrupted run.  This is the mechanism behind the serve
    scheduler's round-robin time slicing. *)
exception Preempted of { t2 : float }

type result = {
  t2 : Vec.t;  (** accepted slow-time points (including [t2 = 0]) *)
  omega : Vec.t;  (** local frequency at each [t2] point *)
  slices : Vec.t array array;
      (** [slices.(m).(j)] is the state at [(t1_j, t2_m)] with
          [t1_j = j / n1] *)
  newton_iterations : int;  (** total inner Newton iterations *)
  options : options;
}

(** [simulate dae ~options ~t2_end ~h2 ~init] advances the envelope
    from the unforced steady state [init] (typically from
    {!Steady.Oscillator.find} with the forcing frozen at its [t = 0]
    value) to [t2_end] with fixed slow step [h2].

    Raises {!Step_failure} if a step's Newton iteration fails. *)
val simulate :
  Dae.t -> options:options -> t2_end:float -> h2:float -> init:Steady.Oscillator.orbit -> result

(** [simulate_controlled dae ~options ~control ~t2_end ~init ()] is
    the adaptive envelope march: each slow step is taken once at [h2]
    and twice at [h2/2], the Richardson difference feeds the
    {!Step_control} PI controller (weighted rtol/atol norm over every
    grid state and [omega]), and Newton failures halve the step and —
    after repeated stalls on the Krylov path — escalate the linear
    solver to dense LU for the rest of the run.

    [control.order] is overridden from [options.theta] (2 for
    trapezoidal, 1 for backward Euler); an infinite [control.h_max] is
    replaced by [t2_end / 2].  [h2_init] defaults to [t2_end / 50].

    [checkpoint:(path, every)] writes a {!Checkpoint} file atomically
    after every [every] accepted steps; [resume:path] restarts from
    such a file (validating [n1], dimension and theta) and continues
    bit-compatibly with the uninterrupted run.  [on_accept] is called
    after each accepted step (after any checkpoint write).  [preempt],
    queried after each accepted step (and [on_accept]), asks the march
    to yield: a [true] return forces a checkpoint write (when a path
    was given) and raises {!Preempted} — never on the final step, which
    returns normally instead.

    Raises [Step_control.Underflow] when error control or failure
    recovery would push the step below [control.h_min], and
    [Checkpoint.Corrupt] on an unreadable or mismatched resume file. *)
val simulate_controlled :
  Dae.t ->
  options:options ->
  control:Step_control.options ->
  ?h2_init:float ->
  ?checkpoint:string * int ->
  ?resume:string ->
  ?on_accept:(t2:float -> omega:float -> unit) ->
  ?preempt:(t2:float -> bool) ->
  t2_end:float ->
  init:Steady.Oscillator.orbit ->
  unit ->
  result

(** [simulate_adaptive dae ~options ~t2_end ~h2_init ?h2_min ?h2_max ~tol ~init]
    adapts the slow step by step-halving comparison of the state
    slices.  Thin wrapper over {!simulate_controlled} with
    [rtol = tol], [atol = tol / 1000], so legacy callers keep their
    signature.  Raises [Step_control.Underflow] if the step collapses
    below [h2_min]. *)
val simulate_adaptive :
  Dae.t ->
  ?h2_min:float ->
  ?h2_max:float ->
  options:options ->
  t2_end:float ->
  h2_init:float ->
  tol:float ->
  init:Steady.Oscillator.orbit ->
  unit ->
  result

(** {1 Post-processing (eq. (17))} *)

(** [warping result] is [phi(t) = integral omega], the bent-path map. *)
val warping : result -> Sigproc.Warp.t

(** [eval_bivariate result ~component ~t1 ~t2] evaluates the bivariate
    waveform: trigonometric interpolation along [t1] (period 1),
    linear interpolation along [t2]. *)
val eval_bivariate : result -> component:int -> t1:float -> t2:float -> float

(** [eval_waveform result ~component t] is the recovered 1-D solution
    [x(t) = xhat(phi(t) mod 1, t)]. *)
val eval_waveform : result -> component:int -> float -> float

(** [waveform_samples result ~component ~per_cycle] samples
    {!eval_waveform} densely enough for [per_cycle] points per
    oscillation cycle, returning [(times, values)]. *)
val waveform_samples : result -> component:int -> per_cycle:int -> Vec.t * Vec.t

(** [amplitude_track result ~component] is, per accepted [t2] point,
    half the peak-to-peak excursion of the component along [t1]:
    the amplitude-modulation envelope (paper Figs. 8 vs 11). *)
val amplitude_track : result -> component:int -> Vec.t

(** [slice result ~index ~component] extracts the [t1] waveform of a
    component at accepted step [index]. *)
val slice : result -> index:int -> component:int -> Vec.t
