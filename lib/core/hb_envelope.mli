(** The WaMPDE in coefficient space: a literal implementation of the
    paper's eq. (19),

    [d Qhat_i / d t2 + (2 pi j) i omega(t2) Qhat_i + Fhat_i = Bhat_i,]

    time-stepped in [t2] with the theta method, with the Fourier phase
    condition of eq. (20) closing the system.  The unknowns are the
    centered Fourier coefficients [Xhat_i(t2)] of every state variable
    plus the local frequency — exactly the quantities a harmonic
    balance code manipulates, demonstrating the paper's remark that
    "existing codes for … harmonic balance can be modified easily to
    perform WaMPDE-based calculations".

    This is a {e reference} implementation (finite-difference Newton
    Jacobians): it is validated against, and should match, the
    production time-domain collocation solver {!Envelope} — the two
    are related by the unitary discrete Fourier transform. *)

open Linalg

type result = {
  t2 : Vec.t;
  omega : Vec.t;
  coeffs : Cx.Cvec.t array array;
      (** [coeffs.(step).(v)] — centered coefficients of variable [v] *)
  harmonics : int;
}

(** [simulate dae ~harmonics ~phase_harmonic ~phase_component ~t2_end
     ~h2 ~init] advances from the unforced orbit [init] (resampled
    into coefficient space; its grid must have [2 harmonics + 1]
    points).  The phase condition is [Im Xhat^component_harmonic = 0].
    [solver] (default [Structured.auto]) selects dense FD-Jacobian
    Newton or matrix-free Newton–Krylov (FD directional derivatives,
    averaged per-harmonic block preconditioning, dense fallback on
    stall).

    Newton failures halve the slow step via the shared {!Step_control}
    policy, escalating to the dense path after repeated stalls; the
    step grows back toward [h2] on recovery.  Raises
    [Step_control.Underflow] when recovery drives the step below
    [1e-9 * h2]. *)
val simulate :
  ?solver:Structured.strategy ->
  Dae.t ->
  harmonics:int ->
  ?phase_component:int ->
  ?phase_harmonic:int ->
  t2_end:float ->
  h2:float ->
  init:Steady.Oscillator.orbit ->
  unit ->
  result

(** [eval_coefficient result ~step ~component ~harmonic] reads one
    coefficient. *)
val eval_coefficient : result -> step:int -> component:int -> harmonic:int -> Cx.c

(** [waveform_slice result ~step ~component ~n] synthesizes the [t1]
    waveform at an accepted step on an [n]-point grid. *)
val waveform_slice : result -> step:int -> component:int -> n:int -> Vec.t
