open Linalg
module Obs = Wampde_obs

type result = {
  t2 : Vec.t;
  omega : Vec.t;
  coeffs : Cx.Cvec.t array array;
  harmonics : int;
}

let two_pi = 2. *. Float.pi

let c_steps = Obs.Metrics.counter "hb_envelope.steps"

(* Real packing of one slow step's unknowns:
   y.((v * nn) + 0)        = X_0 (real)
   y.((v * nn) + 2i - 1)   = Re X_i   (i = 1..m)
   y.((v * nn) + 2i)       = Im X_i
   y.(n * nn)              = omega
   where nn = 2 m + 1. *)

let coeffs_of_packed ~n ~m y =
  let nn = (2 * m) + 1 in
  Array.init n (fun v ->
      let base = v * nn in
      Array.init nn (fun idx ->
          let i = idx - m in
          if i = 0 then Cx.cx y.(base) 0.
          else begin
            let a = abs i in
            let re = y.(base + (2 * a) - 1) and im = y.(base + (2 * a)) in
            if i > 0 then Cx.cx re im else Cx.cx re (-.im)
          end))

let pack_coeffs ~n ~m coeffs omega =
  let nn = (2 * m) + 1 in
  let y = Array.make ((n * nn) + 1) 0. in
  for v = 0 to n - 1 do
    let base = v * nn in
    y.(base) <- Cx.re coeffs.(v).(m);
    for i = 1 to m do
      y.(base + (2 * i) - 1) <- Cx.re coeffs.(v).(m + i);
      y.(base + (2 * i)) <- Cx.im coeffs.(v).(m + i)
    done
  done;
  y.(n * nn) <- omega;
  y

let synthesize ~n ~m coeffs =
  let nn = (2 * m) + 1 in
  Array.init nn (fun j ->
      Vec.init n (fun v ->
          Fourier.Series.eval coeffs.(v) ~period:1. (float_of_int j /. float_of_int nn)))

(* complex g_i = 2 pi j i omega Q_i + F_i, packed to real the same way
   as the unknowns *)
let eval_g dae ~n ~m ~t2 coeffs omega =
  let nn = (2 * m) + 1 in
  let states = synthesize ~n ~m coeffs in
  let qs = Array.map dae.Dae.q states in
  let fs = Array.map (fun st -> dae.Dae.f ~t:t2 st) states in
  let g = Array.make (n * nn) 0. in
  for v = 0 to n - 1 do
    let q_coeffs = Fourier.Series.coeffs (Array.map (fun q -> q.(v)) qs) in
    let f_coeffs = Fourier.Series.coeffs (Array.map (fun f -> f.(v)) fs) in
    let base = v * nn in
    for i = 0 to m do
      let jw = Cx.cx 0. (two_pi *. float_of_int i *. omega) in
      let gi = Complex.add (Complex.mul jw q_coeffs.(m + i)) f_coeffs.(m + i) in
      if i = 0 then g.(base) <- Cx.re gi
      else begin
        g.(base + (2 * i) - 1) <- Cx.re gi;
        g.(base + (2 * i)) <- Cx.im gi
      end
    done
  done;
  g

(* q coefficients only, packed *)
let eval_q_packed dae ~n ~m coeffs =
  let nn = (2 * m) + 1 in
  let states = synthesize ~n ~m coeffs in
  let qs = Array.map dae.Dae.q states in
  let out = Array.make (n * nn) 0. in
  for v = 0 to n - 1 do
    let q_coeffs = Fourier.Series.coeffs (Array.map (fun q -> q.(v)) qs) in
    let base = v * nn in
    for i = 0 to m do
      if i = 0 then out.(base) <- Cx.re q_coeffs.(m)
      else begin
        out.(base + (2 * i) - 1) <- Cx.re q_coeffs.(m + i);
        out.(base + (2 * i)) <- Cx.im q_coeffs.(m + i)
      end
    done
  done;
  out

let mat_average mats =
  let count = Array.length mats in
  let n = Mat.rows mats.(0) in
  Mat.init n n (fun r c ->
      let s = ref 0. in
      for k = 0 to count - 1 do
        s := !s +. mats.(k).(r).(c)
      done;
      !s /. float_of_int count)

let simulate ?(solver = Structured.auto) dae ~harmonics:m ?(phase_component = 0)
    ?(phase_harmonic = 1) ~t2_end ~h2 ~init () =
  let n = dae.Dae.dim in
  Obs.Span.span
    ~attrs:
      [
        ("harmonics", Obs.Span.Int m);
        ("dim", Obs.Span.Int n);
        ("t2", Obs.Span.Float t2_end);
      ]
    "hb_envelope.simulate"
  @@ fun () ->
  Obs.Scope.with_scope "hb_envelope" @@ fun () ->
  let nn = (2 * m) + 1 in
  if Array.length init.Steady.Oscillator.grid <> nn then
    invalid_arg "Hb_envelope.simulate: init grid must have 2 harmonics + 1 points";
  if phase_harmonic < 1 || phase_harmonic > m then
    invalid_arg "Hb_envelope.simulate: phase harmonic out of range";
  let theta = 0.5 in
  (* initial coefficients from the orbit's time-domain grid *)
  let coeffs0 =
    Array.init n (fun v ->
        Fourier.Series.coeffs
          (Array.map (fun s -> s.(v)) init.Steady.Oscillator.grid))
  in
  (* rotate the phase so Im X_phase = 0 initially: shift t1 by delta with
     X_i -> X_i e^{-2 pi j i delta} *)
  let x_l = coeffs0.(phase_component).(m + phase_harmonic) in
  let delta = Complex.arg x_l /. (two_pi *. float_of_int phase_harmonic) in
  let coeffs0 =
    Array.map
      (fun per_var ->
        Array.mapi
          (fun idx c ->
            let i = idx - m in
            Complex.mul c (Cx.cis (-.two_pi *. float_of_int i *. delta)))
          per_var)
      coeffs0
  in
  let phase_slot = (phase_component * nn) + (2 * phase_harmonic) in
  let omega0 = init.Steady.Oscillator.omega in
  let t2s = ref [ 0. ] and omegas = ref [ omega0 ] in
  let coeff_hist = ref [ Array.map Array.copy coeffs0 ] in
  let t2 = ref 0. in
  let coeffs = ref coeffs0 and omega = ref omega0 in
  let g = ref (eval_g dae ~n ~m ~t2:0. !coeffs !omega) in
  (* fixed-target march: the controller only handles Newton failures,
     halving the step and growing it back toward [h2] *)
  let ctrl =
    Step_control.create
      (Step_control.default_options ~h_min:(1e-9 *. h2) ~h_max:h2 ())
      ~h_init:h2
  in
  let escalated = ref false in
  while !t2 < t2_end -. (1e-9 *. t2_end) do
    let h = Step_control.propose ctrl ~remaining:(t2_end -. !t2) in
    let t2_new = !t2 +. h in
    let q0 = eval_q_packed dae ~n ~m !coeffs in
    let g0 = !g in
    let residual y =
      let c = coeffs_of_packed ~n ~m y in
      let om = y.(n * nn) in
      let qy = eval_q_packed dae ~n ~m c in
      let gy = eval_g dae ~n ~m ~t2:t2_new c om in
      let res = Array.make ((n * nn) + 1) 0. in
      for idx = 0 to (n * nn) - 1 do
        res.(idx) <-
          qy.(idx) -. q0.(idx) +. (h *. theta *. gy.(idx))
          +. (h *. (1. -. theta) *. g0.(idx))
      done;
      (* phase condition: Im Xhat^k_l = 0 is just one unknown slot *)
      res.(n * nn) <- y.(phase_slot);
      res
    in
    let options =
      { Nonlin.Newton.default_options with max_iterations = 30; residual_tol = 1e-9 }
    in
    let y0 = pack_coeffs ~n ~m !coeffs !omega in
    (* Matrix-free direction: finite-difference Jacobian-vector products
       (this solver is the FD reference implementation) preconditioned
       with the averaged per-harmonic blocks of the theta-step operator,
       M_i = (1 + h theta j 2 pi i omega) Cbar + h theta Gbar.  The
       omega slot and phase row are left to GMRES. *)
    let linear_solve y r =
      let dense () =
        (* [residual] is pure (fresh arrays, no shared scratch, no
           telemetry), so its FD columns can run on the pool *)
        let jac = Nonlin.Fdjac.jacobian ~parallel:true ~f0:r residual y in
        Lu.solve (Lu.factor jac) r
      in
      let matvec v = Nonlin.Fdjac.directional ~f0:r residual y v in
      let precond =
        let c = coeffs_of_packed ~n ~m y in
        let om = y.(n * nn) in
        let states = synthesize ~n ~m c in
        let cs = Array.map dae.Dae.dq states in
        let gs = Array.map (fun st -> dae.Dae.df ~t:t2_new st) states in
        let cbar = mat_average cs and gbar = mat_average gs in
        let bbar = Mat.init n n (fun r c -> h *. theta *. gbar.(r).(c)) in
        let coeffs =
          Array.init (m + 1) (fun i ->
              Cx.cx 1. (h *. theta *. two_pi *. float_of_int i *. om))
        in
        match Structured.spectral_blocks ~coeffs ~cbar ~bbar with
        | exception Cx.Clu.Singular _ -> None
        | blocks ->
            Some
              (fun (rv : Vec.t) ->
                let out = Array.copy rv in
                let rhs = Cx.Cvec.zeros n in
                for i = 0 to m do
                  for v = 0 to n - 1 do
                    let base = v * nn in
                    rhs.(v) <-
                      (if i = 0 then Cx.cx rv.(base) 0.
                       else Cx.cx rv.(base + (2 * i) - 1) rv.(base + (2 * i)))
                  done;
                  let sol = Cx.Clu.solve blocks.(i) rhs in
                  for v = 0 to n - 1 do
                    let base = v * nn in
                    if i = 0 then out.(base) <- Cx.re sol.(v)
                    else begin
                      out.(base + (2 * i) - 1) <- Cx.re sol.(v);
                      out.(base + (2 * i)) <- Cx.im sol.(v)
                    end
                  done
                done;
                out)
      in
      match precond with
      | None ->
          Structured.fallback_to_dense ();
          dense ()
      | Some m_inv -> (
          let res = Gmres.solve ~matvec ~m_inv ~restart:60 ~max_iter:240 ~tol:1e-8 r in
          let bnorm = Vec.norm2 r in
          if res.Gmres.converged || res.Gmres.residual_norm <= 1e-6 *. bnorm then
            res.Gmres.x
          else begin
            Structured.fallback_to_dense ();
            dense ()
          end)
    in
    let report =
      if (not !escalated) && Structured.use_krylov solver ~dim:((n * nn) + 1) then
        Nonlin.Newton.solve_with ~options ~label:"hb_envelope" ~linear_solve ~residual y0
      else
        (* dense path (or after Krylov escalation): give the hard steps
           a trust-region pass before bouncing them to the controller *)
        (Nonlin.Polyalg.solve ~options ~label:"hb_envelope"
           ~cascade:[ Nonlin.Polyalg.Damped; Nonlin.Polyalg.Trust_region ]
           ~residual y0)
          .Nonlin.Polyalg.report
    in
    if not report.Nonlin.Newton.converged then begin
      ignore (Step_control.failure_retry ctrl ~t:!t2 ~h_used:h ~reason:"newton");
      if Step_control.should_escalate ctrl then escalated := true
    end
    else begin
      coeffs := coeffs_of_packed ~n ~m report.Nonlin.Newton.x;
      omega := report.Nonlin.Newton.x.(n * nn);
      g := eval_g dae ~n ~m ~t2:t2_new !coeffs !omega;
      Obs.Metrics.incr c_steps;
      Step_control.record_accept ctrl ~t:!t2 ~h_used:h;
      (if Obs.enabled () then begin
         (* the coefficients are already spectral: analyse each
            component's centered vector directly, worst case over
            components *)
         let tol = (Obs.Health.thresholds ()).Obs.Health.spectral_tol in
         let needed = ref 0 and tail = ref 0. and avail = ref 0 in
         Array.iter
           (fun c ->
             let r = Fourier.Series.resolution_of_coeffs ~tol c in
             if r.Fourier.Series.needed > !needed then needed := r.Fourier.Series.needed;
             if r.Fourier.Series.tail > !tail then tail := r.Fourier.Series.tail;
             avail := r.Fourier.Series.available)
           !coeffs;
         Obs.Health.note_spectrum ~t:t2_new ~tail:!tail ~needed:!needed ~available:!avail ()
       end);
      if Obs.Events.active () then
        Obs.Events.emit (Obs.Events.Phase_condition { omega = !omega; t2 = t2_new });
      t2 := t2_new;
      t2s := t2_new :: !t2s;
      omegas := !omega :: !omegas;
      coeff_hist := Array.map Array.copy !coeffs :: !coeff_hist
    end
  done;
  {
    t2 = Array.of_list (List.rev !t2s);
    omega = Array.of_list (List.rev !omegas);
    coeffs = Array.of_list (List.rev !coeff_hist);
    harmonics = m;
  }

let eval_coefficient result ~step ~component ~harmonic =
  result.coeffs.(step).(component).(result.harmonics + harmonic)

let waveform_slice result ~step ~component ~n =
  let c = result.coeffs.(step).(component) in
  Vec.init n (fun j -> Fourier.Series.eval c ~period:1. (float_of_int j /. float_of_int n))
