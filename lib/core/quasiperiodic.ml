open Linalg
module Obs = Wampde_obs

type solution = { p2 : float; t2 : Vec.t; omega : Vec.t; slices : Vec.t array array }

type linear_solver = [ `Dense | `Gmres | `Krylov ]

(* Unknown layout: for slice m in 0..n2-1, block of size (n1 * n + 1):
   y.((m * bs) + (j * n) + i) = component i at (t1_j, t2_m);
   y.((m * bs) + n1 * n) = omega at t2_m. *)

let diff1 (options : Envelope.options) =
  match options.Envelope.differentiation with
  | `Spectral -> Fourier.Series.diff_matrix options.Envelope.n1
  | `Fd4 -> Fourier.Series.diff_matrix_fd ~order:4 options.Envelope.n1

let residual_fn dae ~(options : Envelope.options) ~p2 ~n2 ~d1 ~d2 ~phase_row y =
  let n = dae.Dae.dim in
  let n1 = options.Envelope.n1 in
  let bs = (n1 * n) + 1 in
  let state m j = Array.sub y ((m * bs) + (j * n)) n in
  let omega m = y.((m * bs) + (n1 * n)) in
  (* precompute q at every grid point *)
  let qs = Array.init n2 (fun m -> Array.init n1 (fun j -> dae.Dae.q (state m j))) in
  let res = Array.make (n2 * bs) 0. in
  for m = 0 to n2 - 1 do
    let t2m = p2 *. float_of_int m /. float_of_int n2 in
    let om = omega m in
    for j = 0 to n1 - 1 do
      let fj = dae.Dae.f ~t:t2m (state m j) in
      for i = 0 to n - 1 do
        let fast = ref 0. in
        for k = 0 to n1 - 1 do
          fast := !fast +. (d1.(j).(k) *. qs.(m).(k).(i))
        done;
        let slow = ref 0. in
        for p = 0 to n2 - 1 do
          slow := !slow +. (d2.(m).(p) *. qs.(p).(j).(i))
        done;
        res.((m * bs) + (j * n) + i) <- (om *. !fast) +. (!slow /. p2) +. fj.(i)
      done
    done;
    (* phase row for slice m *)
    let s = ref 0. in
    for idx = 0 to (n1 * n) - 1 do
      s := !s +. (phase_row.(idx) *. y.((m * bs) + idx))
    done;
    res.((m * bs) + (n1 * n)) <- !s
  done;
  res

(* Dense Jacobian assembly. *)
let jacobian_fn dae ~(options : Envelope.options) ~p2 ~n2 ~d1 ~d2 ~phase_row y =
  let n = dae.Dae.dim in
  let n1 = options.Envelope.n1 in
  let bs = (n1 * n) + 1 in
  let dim = n2 * bs in
  let state m j = Array.sub y ((m * bs) + (j * n)) n in
  let omega m = y.((m * bs) + (n1 * n)) in
  let qs = Array.init n2 (fun m -> Array.init n1 (fun j -> dae.Dae.q (state m j))) in
  let cs = Array.init n2 (fun m -> Array.init n1 (fun j -> dae.Dae.dq (state m j))) in
  let jac = Mat.zeros dim dim in
  for m = 0 to n2 - 1 do
    let t2m = p2 *. float_of_int m /. float_of_int n2 in
    let om = omega m in
    for j = 0 to n1 - 1 do
      let gj = dae.Dae.df ~t:t2m (state m j) in
      for i = 0 to n - 1 do
        let row = (m * bs) + (j * n) + i in
        (* fast-derivative and local f terms: within slice m *)
        for k = 0 to n1 - 1 do
          let djk = d1.(j).(k) in
          for l = 0 to n - 1 do
            let v = ref (om *. djk *. cs.(m).(k).(i).(l)) in
            if k = j then v := !v +. gj.(i).(l);
            if !v <> 0. then
              jac.(row).((m * bs) + (k * n) + l) <- jac.(row).((m * bs) + (k * n) + l) +. !v
          done
        done;
        (* slow-derivative coupling: same grid point j across slices *)
        for p = 0 to n2 - 1 do
          let dmp = d2.(m).(p) /. p2 in
          if dmp <> 0. then
            for l = 0 to n - 1 do
              let v = dmp *. cs.(p).(j).(i).(l) in
              if v <> 0. then
                jac.(row).((p * bs) + (j * n) + l) <- jac.(row).((p * bs) + (j * n) + l) +. v
            done
        done;
        (* d / d omega_m *)
        let s = ref 0. in
        for k = 0 to n1 - 1 do
          s := !s +. (d1.(j).(k) *. qs.(m).(k).(i))
        done;
        jac.(row).((m * bs) + (n1 * n)) <- !s
      done
    done;
    let prow = (m * bs) + (n1 * n) in
    for idx = 0 to (n1 * n) - 1 do
      jac.(prow).((m * bs) + idx) <- phase_row.(idx)
    done
  done;
  jac

let pack sol =
  let n2 = Array.length sol.slices in
  let n1 = Array.length sol.slices.(0) in
  let n = Array.length sol.slices.(0).(0) in
  let bs = (n1 * n) + 1 in
  Vec.init (n2 * bs) (fun idx ->
      let m = idx / bs and r = idx mod bs in
      if r = n1 * n then sol.omega.(m) else sol.slices.(m).(r / n).(r mod n))

let unpack ~p2 ~n1 ~n ~n2 y =
  let bs = (n1 * n) + 1 in
  {
    p2;
    t2 = Vec.init n2 (fun m -> p2 *. float_of_int m /. float_of_int n2);
    omega = Vec.init n2 (fun m -> y.((m * bs) + (n1 * n)));
    slices =
      Array.init n2 (fun m -> Array.init n1 (fun j -> Array.sub y ((m * bs) + (j * n)) n));
  }

let solve dae ?(linear_solver = `Dense) ?(max_iterations = 25) ?(tol = 1e-8)
    ~(options : Envelope.options) ~p2 ~n2 ~guess () =
  let n = dae.Dae.dim in
  let n1 = options.Envelope.n1 in
  if n1 mod 2 = 0 || n2 mod 2 = 0 then
    invalid_arg "Quasiperiodic.solve: n1 and n2 must be odd";
  if Array.length guess.slices <> n2 || Array.length guess.slices.(0) <> n1 then
    invalid_arg "Quasiperiodic.solve: guess grid mismatch";
  Obs.Span.span
    ~attrs:[ ("n1", Obs.Span.Int n1); ("n2", Obs.Span.Int n2); ("dim", Obs.Span.Int n) ]
    "quasiperiodic.solve"
  @@ fun () ->
  Obs.Scope.with_scope "quasiperiodic" @@ fun () ->
  let d1 = diff1 options in
  let d2 = Fourier.Series.diff_matrix n2 in
  let phase_row = Phase.row options.Envelope.phase ~n1 ~n ~d:d1 in
  let residual y = residual_fn dae ~options ~p2 ~n2 ~d1 ~d2 ~phase_row y in
  let bs = (n1 * n) + 1 in
  let y = ref (pack guess) in
  let r = ref (residual !y) in
  let rnorm = ref (Vec.norm_inf !r) in
  let iters = ref 0 in
  (* Fully matrix-free Newton direction: per-slice structured
     operators (fast derivative + local df), explicit cross-slice slow
     coupling through blockdiag(dq), per-slice omega columns and phase
     rows.  Preconditioned by the per-slice bordered FFT-block inverse
     (the slow d2/p2 coupling is weak against the omega-scaled fast
     term and is left to GMRES).  Returns [None] when the
     preconditioner degenerates or GMRES stalls. *)
  let krylov_dir y r =
    let state m j = Array.sub y ((m * bs) + (j * n)) n in
    let nd = n1 * n in
    let qs = Array.init n2 (fun m -> Array.init n1 (fun j -> dae.Dae.q (state m j))) in
    let cs = Array.init n2 (fun m -> Array.init n1 (fun j -> dae.Dae.dq (state m j))) in
    let gs =
      Array.init n2 (fun m ->
          let t2m = p2 *. float_of_int m /. float_of_int n2 in
          Array.init n1 (fun j -> dae.Dae.df ~t:t2m (state m j)))
    in
    let dqcols =
      Array.init n2 (fun m ->
          Vec.init nd (fun idx ->
              let j = idx / n and i = idx mod n in
              let s = ref 0. in
              for k = 0 to n1 - 1 do
                s := !s +. (d1.(j).(k) *. qs.(m).(k).(i))
              done;
              !s))
    in
    let ops =
      Array.init n2 (fun m ->
          Structured.make_op
            ~alpha:y.((m * bs) + nd)
            ~d:d1 ~c_blocks:cs.(m) ~b_blocks:gs.(m))
    in
    match
      Array.init n2 (fun m ->
          let pc = Structured.make_precond ~dft:Fourier.Fft.structured_dft ops.(m) in
          try Structured.make_bordered pc ~border_col:dqcols.(m) ~border_row:phase_row
          with Structured.Bordered_singular _ ->
            Structured.make_bordered ~gmin:1e-9 pc ~border_col:dqcols.(m) ~border_row:phase_row)
    with
    | exception (Cx.Clu.Singular _ | Structured.Bordered_singular _ | Failure _) -> None
    | borders ->
      let vseg = Array.make bs 0. and oseg = Array.make nd 0. in
      let cu = Array.make (n2 * nd) 0. in
      let matvec v =
        let out = Array.make (n2 * bs) 0. in
        for m = 0 to n2 - 1 do
          Array.blit v (m * bs) vseg 0 nd;
          Structured.block_mul_into cs.(m) ~src:vseg ~dst:oseg;
          Array.blit oseg 0 cu (m * nd) nd
        done;
        for m = 0 to n2 - 1 do
          Array.blit v (m * bs) vseg 0 nd;
          Structured.apply_into ops.(m) vseg oseg;
          Array.blit oseg 0 out (m * bs) nd;
          for p = 0 to n2 - 1 do
            let dmp = d2.(m).(p) /. p2 in
            if dmp <> 0. then begin
              let src = p * nd and dst = m * bs in
              for idx = 0 to nd - 1 do
                out.(dst + idx) <- out.(dst + idx) +. (dmp *. cu.(src + idx))
              done
            end
          done;
          let zeta = v.((m * bs) + nd) in
          if zeta <> 0. then
            for idx = 0 to nd - 1 do
              out.((m * bs) + idx) <- out.((m * bs) + idx) +. (zeta *. dqcols.(m).(idx))
            done;
          let s = ref 0. in
          for idx = 0 to nd - 1 do
            s := !s +. (phase_row.(idx) *. v.((m * bs) + idx))
          done;
          out.((m * bs) + nd) <- !s
        done;
        out
      in
      let m_inv v =
        let out = Array.make (n2 * bs) 0. in
        for m = 0 to n2 - 1 do
          Array.blit v (m * bs) vseg 0 bs;
          let z = Structured.bordered_apply borders.(m) vseg in
          Array.blit z 0 out (m * bs) bs
        done;
        out
      in
      let result = Gmres.solve ~matvec ~m_inv ~restart:60 ~max_iter:300 ~tol:1e-10 r in
      if result.Gmres.converged then Some result.Gmres.x else None
  in
  while !rnorm > tol && !iters < max_iterations do
    let dense () =
      let jac = jacobian_fn dae ~options ~p2 ~n2 ~d1 ~d2 ~phase_row !y in
      Lu.solve (Lu.factor jac) !r
    in
    let dy =
      match linear_solver with
      | `Dense -> dense ()
      | `Gmres ->
        let jac = jacobian_fn dae ~options ~p2 ~n2 ~d1 ~d2 ~phase_row !y in
        (* block-Jacobi preconditioner: LU of each slice-diagonal block *)
        let blocks =
          Array.init n2 (fun m ->
              Lu.factor (Mat.init bs bs (fun a b -> jac.((m * bs) + a).((m * bs) + b))))
        in
        let m_inv v =
          let out = Array.make (n2 * bs) 0. in
          for m = 0 to n2 - 1 do
            let seg = Array.sub v (m * bs) bs in
            let sol = Lu.solve blocks.(m) seg in
            Array.blit sol 0 out (m * bs) bs
          done;
          out
        in
        let result =
          Gmres.solve ~matvec:(fun v -> Mat.matvec jac v) ~m_inv ~restart:60 ~tol:1e-10 !r
        in
        if not result.Gmres.converged then
          failwith "Quasiperiodic.solve: GMRES failed to converge";
        result.Gmres.x
      | `Krylov -> (
        match krylov_dir !y !r with
        | Some dy -> dy
        | None ->
          Structured.fallback_to_dense ();
          dense ())
    in
    (* damped update *)
    let rec try_step lambda =
      if lambda < 1e-3 then failwith "Quasiperiodic.solve: line search failed"
      else begin
        let trial = Array.mapi (fun i yi -> yi -. (lambda *. dy.(i))) !y in
        let rt = residual trial in
        let nt = Vec.norm_inf rt in
        if Float.is_finite nt && (nt < !rnorm || nt <= tol) then (trial, rt, nt)
        else try_step (lambda /. 2.)
      end
    in
    let trial, rt, nt = try_step 1. in
    y := trial;
    r := rt;
    rnorm := nt;
    incr iters
  done;
  if !rnorm > tol then
    failwith
      (Printf.sprintf "Quasiperiodic.solve: no convergence (residual %.3e after %d iterations)"
         !rnorm !iters);
  let sol = unpack ~p2 ~n1 ~n ~n2 !y in
  (if Obs.enabled () then begin
     (* worst-case t1 resolution over the n2 slow slices *)
     let stol = (Obs.Health.thresholds ()).Obs.Health.spectral_tol in
     let needed = ref 0 and tail = ref 0. and avail = ref (n1 / 2) in
     Array.iter
       (fun slice ->
         let rr = Fourier.Series.grid_resolution ~tol:stol slice in
         if rr.Fourier.Series.needed > !needed then needed := rr.Fourier.Series.needed;
         if rr.Fourier.Series.tail > !tail then tail := rr.Fourier.Series.tail;
         avail := rr.Fourier.Series.available)
       sol.slices;
     Obs.Health.note_spectrum ~tail:!tail ~needed:!needed ~available:!avail ()
   end);
  sol

let guess_from_envelope (result : Envelope.result) ~p2 ~n2 ~t_from =
  let n1 = Array.length result.Envelope.slices.(0) in
  let n = Array.length result.Envelope.slices.(0).(0) in
  let sample_at t =
    (* locate nearest envelope step *)
    let m = Array.length result.Envelope.t2 in
    let best = ref 0 in
    for i = 1 to m - 1 do
      if
        Float.abs (result.Envelope.t2.(i) -. t) < Float.abs (result.Envelope.t2.(!best) -. t)
      then best := i
    done;
    !best
  in
  let slices =
    Array.init n2 (fun m ->
        let t = t_from +. (p2 *. float_of_int m /. float_of_int n2) in
        let idx = sample_at t in
        Array.init n1 (fun j -> Array.copy result.Envelope.slices.(idx).(j)))
  in
  let omega =
    Vec.init n2 (fun m ->
        let t = t_from +. (p2 *. float_of_int m /. float_of_int n2) in
        result.Envelope.omega.(sample_at t))
  in
  ignore n;
  {
    p2;
    t2 = Vec.init n2 (fun m -> p2 *. float_of_int m /. float_of_int n2);
    omega;
    slices;
  }

let residual_norm dae ~(options : Envelope.options) sol =
  let n = dae.Dae.dim in
  let n1 = options.Envelope.n1 in
  let n2 = Array.length sol.slices in
  let d1 = diff1 options in
  let d2 = Fourier.Series.diff_matrix n2 in
  let phase_row = Phase.row options.Envelope.phase ~n1 ~n ~d:d1 in
  let res = residual_fn dae ~options ~p2:sol.p2 ~n2 ~d1 ~d2 ~phase_row (pack sol) in
  let bs = (n1 * n) + 1 in
  let worst = ref 0. in
  Array.iteri
    (fun idx v -> if idx mod bs <> n1 * n then worst := Float.max !worst (Float.abs v))
    res;
  !worst

let mean_frequency sol = Vec.mean sol.omega

let eval_waveform sol ~component ~t_max t =
  (* build a warping over [0, t_max] from the periodic omega *)
  let n_samples = Int.max 64 (int_of_float (Float.ceil (t_max /. sol.p2 *. 64.))) in
  let times = Vec.linspace 0. t_max n_samples in
  let omega_interp tt =
    let tau = Float.rem tt sol.p2 in
    let tau = if tau < 0. then tau +. sol.p2 else tau in
    (* trig interpolation of the periodic omega samples *)
    Fourier.Series.interp sol.omega ~period:sol.p2 tau
  in
  let w = Sigproc.Warp.of_samples ~times ~omega:(Vec.map omega_interp times) in
  let tau1 = Float.rem (Sigproc.Warp.phi w t) 1. in
  let t2 = Float.rem t sol.p2 in
  (* bilinear in t2 between slices, trig in t1 *)
  let n2 = Array.length sol.slices in
  let ft = t2 /. sol.p2 *. float_of_int n2 in
  let m0 = int_of_float ft mod n2 in
  let m1 = (m0 + 1) mod n2 in
  let frac = ft -. Float.of_int (int_of_float ft) in
  let value m =
    let samples = Array.map (fun s -> s.(component)) sol.slices.(m) in
    Fourier.Series.interp samples ~period:1. tau1
  in
  ((1. -. frac) *. value m0) +. (frac *. value m1)
