module Obs = Wampde_obs

type kind =
  | Linear_solve
  | Newton_diverge
  | Nan_residual
  | Checkpoint_trunc
  | Solver_stall
  | Journal_trunc

let kinds =
  [ Linear_solve; Newton_diverge; Nan_residual; Checkpoint_trunc; Solver_stall; Journal_trunc ]

let kind_name = function
  | Linear_solve -> "linsolve"
  | Newton_diverge -> "diverge"
  | Nan_residual -> "nan"
  | Checkpoint_trunc -> "ckpt-trunc"
  | Solver_stall -> "stall"
  | Journal_trunc -> "journal-trunc"

let kind_of_name = function
  | "linsolve" -> Some Linear_solve
  | "diverge" -> Some Newton_diverge
  | "nan" -> Some Nan_residual
  | "ckpt-trunc" -> Some Checkpoint_trunc
  | "stall" -> Some Solver_stall
  | "journal-trunc" -> Some Journal_trunc
  | _ -> None

let index = function
  | Linear_solve -> 0
  | Newton_diverge -> 1
  | Nan_residual -> 2
  | Checkpoint_trunc -> 3
  | Solver_stall -> 4
  | Journal_trunc -> 5

let env_var = "WAMPDE_FAULTS"

type rule = At of int  (** single shot on the n-th call *) | Prob of float

let default_stall_s = 0.25

type schedule = {
  rules : rule list array; (* indexed by [index kind] *)
  mutable lcg : int64;
  calls : int array;
  injected : int array;
  stall_s : float; (* sleep injected by a [Solver_stall] trip *)
}

let state : schedule option ref = ref None

let c_injected =
  let tbl = Array.of_list kinds in
  Array.map (fun k -> Obs.Metrics.counter ("fault.injected." ^ kind_name k)) tbl

(* Numerical Recipes 64-bit LCG; the top 53 bits feed a uniform in [0,1). *)
let lcg_next s =
  s.lcg <- Int64.add (Int64.mul s.lcg 6364136223846793005L) 1442695040888963407L;
  let bits = Int64.shift_right_logical s.lcg 11 in
  Int64.to_float bits /. 9007199254740992.

let parse spec =
  let entries =
    String.split_on_char ',' spec |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let seed = ref 1L in
  let stall = ref default_stall_s in
  let rules = Array.make (List.length kinds) [] in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let rec go = function
    | [] ->
      let rules = Array.map List.rev rules in
      let seed = !seed in
      let stall_s = !stall in
      Ok
        (fun () ->
          state :=
            Some
              {
                rules = Array.map (fun l -> l) rules;
                lcg = seed;
                calls = Array.make (Array.length rules) 0;
                injected = Array.make (Array.length rules) 0;
                stall_s;
              })
    | entry :: rest -> (
      match String.index_opt entry '=' with
      | Some i when String.sub entry 0 i = "seed" -> (
        let v = String.sub entry (i + 1) (String.length entry - i - 1) in
        match Int64.of_string_opt v with
        | Some s ->
          seed := s;
          go rest
        | None -> err "Fault.parse: bad seed %S" v)
      | Some i when String.sub entry 0 i = "stall" -> (
        let v = String.sub entry (i + 1) (String.length entry - i - 1) in
        match float_of_string_opt v with
        | Some s when s >= 0. && Float.is_finite s ->
          stall := s;
          go rest
        | Some _ | None -> err "Fault.parse: bad stall duration %S" v)
      | Some _ -> err "Fault.parse: unknown assignment %S" entry
      | None -> (
        let split c =
          match String.index_opt entry c with
          | Some i ->
            Some
              ( String.sub entry 0 i,
                String.sub entry (i + 1) (String.length entry - i - 1) )
          | None -> None
        in
        match split '@' with
        | Some (name, n) -> (
          match (kind_of_name name, int_of_string_opt n) with
          | Some k, Some n when n >= 1 ->
            rules.(index k) <- At n :: rules.(index k);
            go rest
          | Some _, _ -> err "Fault.parse: bad call count in %S" entry
          | None, _ -> err "Fault.parse: unknown fault kind %S" name)
        | None -> (
          match split '%' with
          | Some (name, p) -> (
            match (kind_of_name name, float_of_string_opt p) with
            | Some k, Some p when p >= 0. && p <= 1. ->
              rules.(index k) <- Prob p :: rules.(index k);
              go rest
            | Some _, _ -> err "Fault.parse: bad probability in %S" entry
            | None, _ -> err "Fault.parse: unknown fault kind %S" name)
          | None -> err "Fault.parse: malformed entry %S (want kind@N, kind%%P or seed=S)" entry)))
  in
  go entries

let arm spec = Result.map (fun install -> install ()) (parse spec)

let arm_exn spec =
  match arm spec with Ok () -> () | Error msg -> invalid_arg msg

let arm_from_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> ()
  | Some spec -> arm_exn spec

let disarm () = state := None
let armed () = !state <> None

let fire kind =
  match !state with
  | None -> false
  | Some s ->
    let i = index kind in
    s.calls.(i) <- s.calls.(i) + 1;
    let hit =
      List.exists
        (function At n -> n = s.calls.(i) | Prob p -> lcg_next s < p)
        s.rules.(i)
    in
    if hit then begin
      s.injected.(i) <- s.injected.(i) + 1;
      Obs.Metrics.incr c_injected.(i);
      (* every harness trip lands on the flight-recorder timeline, so a
         dump triggered by the resulting failure shows the injection
         that caused it *)
      Obs.Flight.note ~kind:"fault"
        (Printf.sprintf "injected %s (call %d, injection %d)" (kind_name kind) s.calls.(i)
           s.injected.(i))
    end;
    hit

let calls kind = match !state with None -> 0 | Some s -> s.calls.(index kind)

let injected kind =
  match !state with None -> 0 | Some s -> s.injected.(index kind)

let stall_seconds () =
  match !state with None -> default_stall_s | Some s -> s.stall_s

(* Probe site helper for [Solver_stall]: when the schedule says so,
   wedge the caller by sleeping past the serve watchdog's stall
   threshold.  The sleep is interruptible — a SIGALRM-driven watchdog
   raising from its handler propagates out of [sleepf], exactly like a
   genuinely stuck solver being cancelled. *)
let maybe_stall () =
  if armed () && fire Solver_stall then begin
    let s = stall_seconds () in
    if s > 0. then try Unix.sleepf s with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  end

let with_armed spec f =
  let saved = !state in
  arm_exn spec;
  Fun.protect ~finally:(fun () -> state := saved) f
