(** Deterministic, seedable fault injection for solver hardening tests.

    The harness is disarmed by default and costs a single branch per
    probe site.  Arming installs a schedule parsed from a compact spec
    string; every probe site calls {!fire} with its {!kind} and injects
    the corresponding failure when the schedule says so.

    Spec grammar (comma-separated entries):
    - [kind@N]  — fire deterministically on the [N]-th call for [kind]
      (1-based, single shot);
    - [kind%P]  — fire on each call with probability [P] (in [0,1]),
      drawn from a seeded LCG so runs are reproducible;
    - [seed=S]  — set the LCG seed (default 1);
    - [stall=S] — seconds a [Solver_stall] trip sleeps (default 0.25).

    Kind names: [linsolve], [diverge], [nan], [ckpt-trunc], [stall],
    [journal-trunc].
    Example: ["linsolve@3,nan%0.05,seed=42"]. *)

type kind =
  | Linear_solve  (** force the inner linear solve to fail *)
  | Newton_diverge  (** corrupt the Newton step so the iterate diverges *)
  | Nan_residual  (** contaminate a residual evaluation with NaN *)
  | Checkpoint_trunc  (** truncate a checkpoint payload before writing *)
  | Solver_stall
      (** wedge the solver: sleep past the serve watchdog's stall
          threshold inside a residual evaluation *)
  | Journal_trunc  (** truncate a serve job-journal record mid-write *)

val kind_name : kind -> string
(** Short stable name used in specs and metrics ([linsolve], ...). *)

val env_var : string
(** Name of the arming environment variable, ["WAMPDE_FAULTS"]. *)

val parse : string -> (unit -> unit, string) result
(** [parse spec] validates [spec] and returns a thunk that arms it.
    [Error msg] describes the first malformed entry. *)

val arm : string -> (unit, string) result
(** [arm spec] parses and installs a schedule, resetting all call and
    injection counters. *)

val arm_exn : string -> unit
(** Like {!arm} but raises [Invalid_argument] on a malformed spec. *)

val arm_from_env : unit -> unit
(** Arm from [WAMPDE_FAULTS] if set and non-empty; raises
    [Invalid_argument] on a malformed value.  Intended for CLI entry
    points — libraries never read the environment on their own. *)

val disarm : unit -> unit
(** Remove the schedule.  Counters are preserved for inspection. *)

val armed : unit -> bool

val fire : kind -> bool
(** Probe site hook: count one call for [kind] and report whether the
    fault should be injected now.  Always [false] when disarmed (and
    then the call is not counted). *)

val calls : kind -> int
(** Calls probed for [kind] since the last {!arm}. *)

val injected : kind -> int
(** Faults injected for [kind] since the last {!arm}. *)

val stall_seconds : unit -> float
(** The armed schedule's [stall=S] duration (the default when
    disarmed). *)

val maybe_stall : unit -> unit
(** Probe site hook for {!Solver_stall}: when armed and fired, sleep
    for {!stall_seconds} — emulating a wedged solver so watchdog
    cancellation paths are exercisable.  The sleep is interruptible by
    signal-driven cancellation. *)

val with_armed : string -> (unit -> 'a) -> 'a
(** [with_armed spec f] arms, runs [f], and restores the previous
    schedule (and counters) even on exception. *)
