(** Binary checkpoint files for long integrator runs.

    A checkpoint is an ordered list of named sections (scalars, text,
    and 1/2/3-dimensional float arrays) written to a single file with
    a magic string, a format version and a CRC32 of the payload, so a
    killed run can resume and a truncated or bit-flipped file is
    detected instead of silently resuming from garbage.

    Floats round-trip exactly (IEEE-754 bit patterns are stored), so a
    resumed integration continues bit-compatibly with the run that
    wrote the file.

    Writes are atomic: the payload goes to [path ^ ".tmp"] and is
    renamed over [path], so a crash mid-checkpoint leaves the previous
    checkpoint intact.

    Telemetry: saves and loads run inside [checkpoint.save] /
    [checkpoint.load] spans, bump the [checkpoint.saves] /
    [checkpoint.loads] counters and mirror the encoded size in the
    [checkpoint.bytes] gauge. *)

type section =
  | Scalar of float
  | Text of string
  | Vector of float array
  | Matrix of float array array
  | Tensor of float array array array

(** Named sections, preserved in order. *)
type t = (string * section) list

(** Raised by {!load} on bad magic, unknown version, CRC mismatch,
    truncation, or by the typed accessors on missing/mistyped
    sections. *)
exception Corrupt of string

(** Current on-disk format version. *)
val format_version : int

val save : path:string -> t -> unit
(** Atomic (tmp + rename) CRC-protected write.  Probes the
    [Fault.Checkpoint_trunc] injection point: when armed and fired, the
    payload is deliberately truncated so a subsequent {!load} raises
    {!Corrupt}. *)

val load : path:string -> t

(** {1 Raw framing}

    The section codec and CRC used by {!save}/{!load}, exposed so
    other durable formats (e.g. the serve job journal) can reuse the
    bit-preserving encoding and corruption detection without
    reimplementing them. *)

(** [encode t] is the binary payload of [t] (no header, no CRC);
    floats keep their IEEE-754 bit patterns. *)
val encode : t -> Bytes.t

(** [decode payload] inverts {!encode}.  @raise Corrupt on truncated,
    trailing or otherwise malformed bytes. *)
val decode : Bytes.t -> t

(** CRC32 (IEEE 802.3, reflected) of a byte string — the checksum
    {!save} stores and {!load} verifies. *)
val crc32 : Bytes.t -> int32

(** {1 Typed accessors} (all raise {!Corrupt} with the section name on
    a missing or differently-typed section) *)

val scalar : t -> string -> float
val text : t -> string -> string
val vector : t -> string -> float array
val matrix : t -> string -> float array array
val tensor : t -> string -> float array array array

(** [mem t name] is true when a section [name] exists. *)
val mem : t -> string -> bool
