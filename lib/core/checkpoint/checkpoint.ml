module Obs = Wampde_obs

let c_saves = Obs.Metrics.counter "checkpoint.saves"
let c_loads = Obs.Metrics.counter "checkpoint.loads"
let g_bytes = Obs.Metrics.gauge "checkpoint.bytes"

type section =
  | Scalar of float
  | Text of string
  | Vector of float array
  | Matrix of float array array
  | Tensor of float array array array

type t = (string * section) list

exception Corrupt of string

let () =
  Printexc.register_printer (function
    | Corrupt msg -> Some (Printf.sprintf "Checkpoint.Corrupt: %s" msg)
    | _ -> None)

let magic = "WAMPDECP"
let format_version = 1

(* ---------- CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) ---------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           let lsb = Int32.logand !c 1l in
           c := Int32.shift_right_logical !c 1;
           if lsb = 1l then c := Int32.logxor !c 0xEDB88320l
         done;
         !c))

let crc32 bytes =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  Bytes.iter
    (fun ch ->
      let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl) in
      c := Int32.logxor (Int32.shift_right_logical !c 8) table.(idx))
    bytes;
  Int32.logxor !c 0xFFFFFFFFl

(* ---------- encoding ---------- *)

let tag_of = function
  | Scalar _ -> 0
  | Text _ -> 1
  | Vector _ -> 2
  | Matrix _ -> 3
  | Tensor _ -> 4

let add_u32 buf n = Buffer.add_int32_le buf (Int32.of_int n)
let add_f64 buf v = Buffer.add_int64_le buf (Int64.bits_of_float v)

let add_string buf s =
  add_u32 buf (String.length s);
  Buffer.add_string buf s

let add_vector buf a =
  add_u32 buf (Array.length a);
  Array.iter (add_f64 buf) a

let add_matrix buf m =
  add_u32 buf (Array.length m);
  Array.iter (add_vector buf) m

let encode sections =
  let buf = Buffer.create 4096 in
  add_u32 buf (List.length sections);
  List.iter
    (fun (name, section) ->
      add_string buf name;
      Buffer.add_char buf (Char.chr (tag_of section));
      match section with
      | Scalar v -> add_f64 buf v
      | Text s -> add_string buf s
      | Vector a -> add_vector buf a
      | Matrix m -> add_matrix buf m
      | Tensor t ->
        add_u32 buf (Array.length t);
        Array.iter (add_matrix buf) t)
    sections;
  Buffer.to_bytes buf

(* ---------- decoding ---------- *)

type cursor = { data : Bytes.t; mutable pos : int }

let need cur n what =
  if cur.pos + n > Bytes.length cur.data then
    raise (Corrupt (Printf.sprintf "truncated payload reading %s" what))

let get_u32 cur what =
  need cur 4 what;
  let v = Int32.to_int (Bytes.get_int32_le cur.data cur.pos) in
  cur.pos <- cur.pos + 4;
  if v < 0 then raise (Corrupt (Printf.sprintf "negative length for %s" what));
  v

let get_f64 cur what =
  need cur 8 what;
  let v = Int64.float_of_bits (Bytes.get_int64_le cur.data cur.pos) in
  cur.pos <- cur.pos + 8;
  v

let get_string cur what =
  let n = get_u32 cur what in
  need cur n what;
  let s = Bytes.sub_string cur.data cur.pos n in
  cur.pos <- cur.pos + n;
  s

let get_vector cur what =
  let n = get_u32 cur what in
  Array.init n (fun _ -> get_f64 cur what)

let get_matrix cur what =
  let n = get_u32 cur what in
  Array.init n (fun _ -> get_vector cur what)

let decode data =
  let cur = { data; pos = 0 } in
  let count = get_u32 cur "section count" in
  let sections =
    List.init count (fun _ ->
        let name = get_string cur "section name" in
        need cur 1 name;
        let tag = Char.code (Bytes.get cur.data cur.pos) in
        cur.pos <- cur.pos + 1;
        let section =
          match tag with
          | 0 -> Scalar (get_f64 cur name)
          | 1 -> Text (get_string cur name)
          | 2 -> Vector (get_vector cur name)
          | 3 -> Matrix (get_matrix cur name)
          | 4 ->
            let k = get_u32 cur name in
            Tensor (Array.init k (fun _ -> get_matrix cur name))
          | t -> raise (Corrupt (Printf.sprintf "unknown section tag %d for %S" t name))
        in
        (name, section))
  in
  if cur.pos <> Bytes.length data then raise (Corrupt "trailing bytes after last section");
  sections

(* ---------- file I/O ---------- *)

let save ~path sections =
  Obs.Span.span ~attrs:[ ("path", Obs.Span.Str path) ] "checkpoint.save" @@ fun () ->
  let payload = encode sections in
  let crc = crc32 payload in
  (* fault injection: write only half the payload while keeping the
     full payload's CRC, emulating a torn write that slipped past the
     atomic rename (e.g. a lying disk); [load] must flag it as Corrupt *)
  let payload =
    if Fault.armed () && Fault.fire Fault.Checkpoint_trunc then
      Bytes.sub payload 0 (Bytes.length payload / 2)
    else payload
  in
  let header = Buffer.create 24 in
  Buffer.add_string header magic;
  add_u32 header format_version;
  Buffer.add_int64_le header (Int64.of_int (Bytes.length payload));
  Buffer.add_int32_le header crc;
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Buffer.output_buffer oc header;
      output_bytes oc payload);
  Sys.rename tmp path;
  Obs.Metrics.incr c_saves;
  Obs.Metrics.set g_bytes (float_of_int (Buffer.length header + Bytes.length payload))

let load ~path =
  Obs.Span.span ~attrs:[ ("path", Obs.Span.Str path) ] "checkpoint.load" @@ fun () ->
  let ic =
    try open_in_bin path
    with Sys_error msg -> raise (Corrupt (Printf.sprintf "cannot open checkpoint: %s" msg))
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let read_exactly n what =
        let b = Bytes.create n in
        (try really_input ic b 0 n
         with End_of_file -> raise (Corrupt (Printf.sprintf "truncated header reading %s" what)));
        b
      in
      let m = Bytes.to_string (read_exactly (String.length magic) "magic") in
      if m <> magic then raise (Corrupt (Printf.sprintf "bad magic %S (not a checkpoint?)" m));
      let version = Int32.to_int (Bytes.get_int32_le (read_exactly 4 "version") 0) in
      if version <> format_version then
        raise
          (Corrupt
             (Printf.sprintf "format version %d unsupported (this build reads %d)" version
                format_version));
      let len = Int64.to_int (Bytes.get_int64_le (read_exactly 8 "payload length") 0) in
      if len < 0 || len > Sys.max_string_length then raise (Corrupt "implausible payload length");
      let crc_expect = Bytes.get_int32_le (read_exactly 4 "crc") 0 in
      let payload = read_exactly len "payload" in
      (try
         let extra = input_char ic in
         ignore extra;
         raise (Corrupt "trailing bytes after payload")
       with End_of_file -> ());
      let crc = crc32 payload in
      if crc <> crc_expect then
        raise
          (Corrupt
             (Printf.sprintf "CRC mismatch: file says %08lx, payload hashes to %08lx" crc_expect
                crc));
      let sections = decode payload in
      Obs.Metrics.incr c_loads;
      sections)

(* ---------- accessors ---------- *)

let kind_name = function
  | Scalar _ -> "scalar"
  | Text _ -> "text"
  | Vector _ -> "vector"
  | Matrix _ -> "matrix"
  | Tensor _ -> "tensor"

let find sections name what =
  match List.assoc_opt name sections with
  | Some s -> s
  | None -> raise (Corrupt (Printf.sprintf "missing %s section %S" what name))

let mistyped name want got =
  raise (Corrupt (Printf.sprintf "section %S is a %s, expected a %s" name (kind_name got) want))

let scalar t name =
  match find t name "scalar" with Scalar v -> v | s -> mistyped name "scalar" s

let text t name = match find t name "text" with Text s -> s | s -> mistyped name "text" s

let vector t name =
  match find t name "vector" with Vector a -> a | s -> mistyped name "vector" s

let matrix t name =
  match find t name "matrix" with Matrix m -> m | s -> mistyped name "matrix" s

let tensor t name =
  match find t name "tensor" with Tensor x -> x | s -> mistyped name "tensor" s

let mem t name = List.mem_assoc name t
