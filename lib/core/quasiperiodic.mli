(** WaMPDE with periodic boundary conditions in [t2] (paper Section
    4.1): directly computes quasiperiodic (FM and AM) steady states of
    forced oscillators without following any transient.

    With [b(t2)] of period [p2], both the bivariate waveform
    ([(1, p2)]-periodic) and the local frequency ([p2]-periodic) are
    solved for on an [n1 x n2] grid: collocation along both axes with
    trigonometric differentiation, one phase-condition row per [t2]
    slice (eq. (20) holding at every [t2]), and Newton on the coupled
    system of [n2 (n1 n + 1)] unknowns.

    The linear systems may be solved densely (LU) or matrix-free with
    GMRES and a block-Jacobi (slice-diagonal) preconditioner — the
    paper's pointer to iterative methods [Saa96] for large systems. *)

open Linalg

type solution = {
  p2 : float;  (** slow period *)
  t2 : Vec.t;  (** slice times [m p2 / n2] *)
  omega : Vec.t;  (** local frequency per slice *)
  slices : Vec.t array array;  (** [slices.(m).(j)]: state at [(t1_j, t2_m)] *)
}

(** [`Dense] assembles and LU-factors the full Jacobian; [`Gmres]
    assembles it but solves iteratively with a block-Jacobi
    preconditioner; [`Krylov] never assembles it — structured
    matrix-free products with per-slice bordered FFT-block
    preconditioning (falling back to dense on stall). *)
type linear_solver = [ `Dense | `Gmres | `Krylov ]

(** [solve dae ~options ~p2 ~n2 ~guess ()] solves the two-periodic
    WaMPDE.  [options] supplies [n1], the phase condition and the
    differentiation scheme (its [theta] is ignored — there is no
    time-stepping here).  [guess] provides initial slices and
    frequencies, most naturally a settled {!Envelope} run sampled over
    one slow period (see {!guess_from_envelope}).  Raises [Failure] if
    Newton does not converge. *)
val solve :
  Dae.t ->
  ?linear_solver:linear_solver ->
  ?max_iterations:int ->
  ?tol:float ->
  options:Envelope.options ->
  p2:float ->
  n2:int ->
  guess:solution ->
  unit ->
  solution

(** [guess_from_envelope result ~p2 ~n2 ~t_from] samples a (settled)
    envelope run on the [n2] slice times [t_from + m p2 / n2],
    producing a starting guess. *)
val guess_from_envelope : Envelope.result -> p2:float -> n2:int -> t_from:float -> solution

(** [residual_norm dae ~options sol] evaluates the two-periodic WaMPDE
    residual's infinity norm (phase rows excluded). *)
val residual_norm : Dae.t -> options:Envelope.options -> solution -> float

(** [eval_waveform sol ~component ~cycles t] recovers the univariate
    solution from the quasiperiodic form: [phi] is integrated from the
    periodic [omega] starting at [t = 0].  [cycles] caps nothing — it
    is the sampling span hint used to build the internal warping and
    must cover [t]. *)
val eval_waveform : solution -> component:int -> t_max:float -> float -> float

(** [mean_frequency sol] is the [t2]-average of the local frequency
    (the paper's [omega_0] in eq. (21)). *)
val mean_frequency : solution -> float
