open Linalg
module Obs = Wampde_obs

let c_newton_iters = Obs.Metrics.counter "newton.iterations"
let c_env_steps = Obs.Metrics.counter "envelope.steps"
let c_env_rejects = Obs.Metrics.counter "envelope.rejects"
let c_jac_refresh = Obs.Metrics.counter "envelope.jacobian_refreshes"

type options = {
  n1 : int;
  theta : float;
  phase : Phase.t;
  differentiation : [ `Spectral | `Fd4 ];
  newton : Nonlin.Newton.options;
}

let default_options ?(n1 = 25) ?(phase = Phase.Derivative 0) () =
  {
    n1;
    theta = 0.5;
    phase;
    differentiation = `Spectral;
    newton = { Nonlin.Newton.default_options with max_iterations = 30; residual_tol = 1e-9 };
  }

type result = {
  t2 : Vec.t;
  omega : Vec.t;
  slices : Vec.t array array;
  newton_iterations : int;
  options : options;
}

(* Flat unknown layout per step: y.(j * n + i) = component i at t1 grid
   point j; y.(n1 * n) = omega. *)

let diff_matrix options =
  match options.differentiation with
  | `Spectral -> Fourier.Series.diff_matrix options.n1
  | `Fd4 -> Fourier.Series.diff_matrix_fd ~order:4 options.n1

(* g_{j,i}(X, omega, t2) = omega (D Q)_{j,i} + f(t2, X_j)_i : the
   "spatial" part of the WaMPDE residual at one collocation point. *)
let eval_g dae ~n1 ~d ~t2 states omega =
  let n = dae.Dae.dim in
  let qs = Array.map dae.Dae.q states in
  let g = Array.make (n1 * n) 0. in
  for j = 0 to n1 - 1 do
    let fj = dae.Dae.f ~t:t2 states.(j) in
    let dj = d.(j) in
    for i = 0 to n - 1 do
      let s = ref 0. in
      for k = 0 to n1 - 1 do
        s := !s +. (dj.(k) *. qs.(k).(i))
      done;
      g.((j * n) + i) <- (omega *. !s) +. fj.(i)
    done
  done;
  g

let unpack ~n1 ~n y = (Array.init n1 (fun j -> Array.sub y (j * n) n), y.(n1 * n))

(* Jacobian cache for the chord (stale-Jacobian) Newton iteration: the
   collocation Jacobian varies slowly along t2, so one factorization
   typically serves several slow steps.  Refreshed automatically when
   the iteration stops contracting. *)
type jac_cache = { mutable lu : Lu.t option }

let new_cache () = { lu = None }

(* One theta step of size h2 from (states0, omega0, g0) at t2_new. *)
let step dae ~options ~cache ~d ~phase_row ~t2_new ~h2 ~states0 ~g0 ~omega0 =
  Obs.Span.span
    ~attrs:[ ("t2", Obs.Span.Float t2_new); ("h2", Obs.Span.Float h2) ]
    "envelope.step"
  @@ fun () ->
  let n = dae.Dae.dim in
  let n1 = options.n1 in
  let theta = options.theta in
  let q0 = Array.map dae.Dae.q states0 in
  let residual y =
    let states, omega = unpack ~n1 ~n y in
    let g = eval_g dae ~n1 ~d ~t2:t2_new states omega in
    let res = Array.make ((n1 * n) + 1) 0. in
    for j = 0 to n1 - 1 do
      let qj = dae.Dae.q states.(j) in
      for i = 0 to n - 1 do
        let idx = (j * n) + i in
        res.(idx) <-
          qj.(i) -. q0.(j).(i)
          +. (h2 *. theta *. g.(idx))
          +. (if theta < 1. then h2 *. (1. -. theta) *. g0.(idx) else 0.)
      done
    done;
    (* phase condition row *)
    let s = ref 0. in
    for idx = 0 to (n1 * n) - 1 do
      s := !s +. (phase_row.(idx) *. y.(idx))
    done;
    res.(n1 * n) <- !s;
    res
  in
  let jacobian y =
    let states, omega = unpack ~n1 ~n y in
    let qs = Array.map dae.Dae.q states in
    let cs = Array.map dae.Dae.dq states in
    let dim = (n1 * n) + 1 in
    let jac = Mat.zeros dim dim in
    for j = 0 to n1 - 1 do
      let gj = dae.Dae.df ~t:t2_new states.(j) in
      let dj = d.(j) in
      for k = 0 to n1 - 1 do
        let djk = dj.(k) in
        let fast = h2 *. theta *. omega *. djk in
        for i = 0 to n - 1 do
          let row = (j * n) + i in
          for l = 0 to n - 1 do
            let v = ref (fast *. cs.(k).(i).(l)) in
            if j = k then v := !v +. cs.(j).(i).(l) +. (h2 *. theta *. gj.(i).(l));
            if !v <> 0. then jac.(row).((k * n) + l) <- jac.(row).((k * n) + l) +. !v
          done
        done
      done;
      (* d/d omega: h2 theta (D Q)_j *)
      for i = 0 to n - 1 do
        let s = ref 0. in
        for k = 0 to n1 - 1 do
          s := !s +. (dj.(k) *. qs.(k).(i))
        done;
        jac.((j * n) + i).(n1 * n) <- h2 *. theta *. !s
      done
    done;
    for idx = 0 to (n1 * n) - 1 do
      jac.(n1 * n).(idx) <- phase_row.(idx)
    done;
    jac
  in
  let y0 =
    Vec.init ((n1 * n) + 1) (fun idx ->
        if idx = n1 * n then omega0 else states0.(idx / n).(idx mod n))
  in
  (* chord Newton: reuse the cached factorization while it contracts,
     refresh it (at the current iterate) when it does not *)
  let tol = options.newton.Nonlin.Newton.residual_tol in
  let max_iterations = Int.max 40 options.newton.Nonlin.Newton.max_iterations in
  let fail rnorm =
    Obs.Metrics.incr c_env_rejects;
    if Obs.Events.active () then
      Obs.Events.emit (Obs.Events.Step_reject { t = t2_new; h = h2; reason = "newton" });
    failwith
      (Printf.sprintf "Wampde.Envelope: Newton failed at t2 = %.6g (h2 = %.3g, residual %.3e)"
         t2_new h2 rnorm)
  in
  let refresh y =
    Obs.Metrics.incr c_jac_refresh;
    let lu = Lu.factor (jacobian y) in
    cache.lu <- Some lu;
    lu
  in
  let y = ref y0 in
  let r = ref (residual y0) in
  let rnorm = ref (Vec.norm_inf !r) in
  let fresh = ref false in
  let iters = ref 0 in
  (try
     while !rnorm > tol do
       if !iters >= max_iterations then fail !rnorm;
       incr iters;
       Obs.Metrics.incr c_newton_iters;
       let lu = match cache.lu with Some lu -> lu | None -> refresh !y in
       let dy = Lu.solve lu !r in
       let trial = Array.mapi (fun i yi -> yi -. dy.(i)) !y in
       let rt = residual trial in
       let rtnorm = Vec.norm_inf rt in
       if Float.is_finite rtnorm && (rtnorm <= tol || rtnorm < 0.7 *. !rnorm) then begin
         y := trial;
         r := rt;
         rnorm := rtnorm;
         fresh := false;
         if Obs.Events.active () then
           Obs.Events.emit
             (Obs.Events.Newton_iter
                { solver = "envelope.chord"; k = !iters; residual = rtnorm; damping = 1. })
       end
       else if not !fresh then begin
         (* stale Jacobian stopped contracting: refresh and retry *)
         ignore (refresh !y);
         fresh := true
       end
       else begin
         (* fresh Jacobian and still no contraction: damped line search *)
         let rec backtrack lambda =
           if lambda < 1e-4 then fail !rnorm
           else begin
             let t = Array.mapi (fun i yi -> yi -. (lambda *. dy.(i))) !y in
             let rl = residual t in
             let nl = Vec.norm_inf rl in
             if Float.is_finite nl && nl < !rnorm then begin
               y := t;
               r := rl;
               rnorm := nl
             end
             else backtrack (lambda /. 2.)
           end
         in
         backtrack 0.5;
         (* the next iteration refactors at the new point *)
         cache.lu <- None;
         fresh := false
       end
     done
   with Lu.Singular _ -> fail !rnorm);
  let states, omega = unpack ~n1 ~n !y in
  (states, omega, !iters)

let check_init options (init : Steady.Oscillator.orbit) =
  if Array.length init.Steady.Oscillator.grid <> options.n1 then
    invalid_arg "Wampde.Envelope: init grid size differs from options.n1";
  if options.n1 mod 2 = 0 then invalid_arg "Wampde.Envelope: n1 must be odd"

(* The phase condition only pins the solution within its own constraint
   manifold; starting OFF the manifold can make Newton land on a valid
   but non-compact solution branch (the paper's footnote 3: choosing a
   slowly-varying phase condition "is the key to compact numerical
   representation").  For the Fourier condition we therefore rotate the
   initial orbit in t1 so that Im Xhat^k_l = 0 holds exactly at t2 = 0;
   a t1-rotation maps solutions to solutions with unchanged omega. *)
let align_init options (init : Steady.Oscillator.orbit) =
  match options.phase with
  | Phase.Derivative _ -> init
  | Phase.Fourier { component; harmonic } ->
    let n1 = options.n1 in
    let grid = init.Steady.Oscillator.grid in
    let n = Array.length grid.(0) in
    let samples = Array.map (fun s -> s.(component)) grid in
    let coeffs = Fourier.Series.coeffs samples in
    let x_l = Fourier.Series.harmonic coeffs harmonic in
    (* sampling at t1 + delta multiplies X_l by e^{2 pi j l delta}; choose
       delta so the rotated coefficient becomes real *)
    let delta = -.Complex.arg x_l /. (2. *. Float.pi *. float_of_int harmonic) in
    if Float.abs delta < 1e-12 then init
    else begin
      let rotated =
        Array.init n1 (fun j ->
            Vec.init n (fun v ->
                let var_samples = Array.map (fun s -> s.(v)) grid in
                Fourier.Series.interp var_samples ~period:1.
                  ((float_of_int j /. float_of_int n1) +. delta)))
      in
      { init with Steady.Oscillator.grid = rotated }
    end

let simulate dae ~options ~t2_end ~h2 ~init =
  check_init options init;
  Obs.Span.span
    ~attrs:
      [
        ("n1", Obs.Span.Int options.n1);
        ("dim", Obs.Span.Int dae.Dae.dim);
        ("t2", Obs.Span.Float t2_end);
      ]
    "envelope.simulate"
  @@ fun () ->
  let init = align_init options init in
  let n1 = options.n1 and n = dae.Dae.dim in
  let d = diff_matrix options in
  let phase_row = Phase.row options.phase ~n1 ~n ~d in
  let t2s = ref [ 0. ] in
  let omegas = ref [ init.Steady.Oscillator.omega ] in
  let slices = ref [ Array.map Array.copy init.Steady.Oscillator.grid ] in
  let iter_count = ref 0 in
  let t2 = ref 0. in
  let states = ref init.Steady.Oscillator.grid and omega = ref init.Steady.Oscillator.omega in
  let g = ref (eval_g dae ~n1 ~d ~t2:0. !states !omega) in
  let cache = new_cache () in
  while !t2 < t2_end -. (1e-9 *. t2_end) do
    let h = Float.min h2 (t2_end -. !t2) in
    let t2_new = !t2 +. h in
    let states', omega', iters =
      step dae ~options ~cache ~d ~phase_row ~t2_new ~h2:h ~states0:!states ~g0:!g ~omega0:!omega
    in
    iter_count := !iter_count + iters;
    states := states';
    omega := omega';
    g := eval_g dae ~n1 ~d ~t2:t2_new states' omega';
    Obs.Metrics.incr c_env_steps;
    if Obs.Events.active () then begin
      Obs.Events.emit (Obs.Events.Step_accept { t = !t2; h });
      Obs.Events.emit (Obs.Events.Phase_condition { omega = omega'; t2 = t2_new })
    end;
    t2 := t2_new;
    t2s := t2_new :: !t2s;
    omegas := omega' :: !omegas;
    slices := Array.map Array.copy states' :: !slices
  done;
  {
    t2 = Array.of_list (List.rev !t2s);
    omega = Array.of_list (List.rev !omegas);
    slices = Array.of_list (List.rev !slices);
    newton_iterations = !iter_count;
    options;
  }

let simulate_adaptive dae ?(h2_min = 1e-9) ?h2_max ~options ~t2_end ~h2_init ~tol ~init () =
  check_init options init;
  Obs.Span.span
    ~attrs:
      [
        ("n1", Obs.Span.Int options.n1);
        ("dim", Obs.Span.Int dae.Dae.dim);
        ("t2", Obs.Span.Float t2_end);
      ]
    "envelope.simulate_adaptive"
  @@ fun () ->
  let init = align_init options init in
  let n1 = options.n1 and n = dae.Dae.dim in
  let h2_max = match h2_max with Some h -> h | None -> t2_end /. 5. in
  let d = diff_matrix options in
  let phase_row = Phase.row options.phase ~n1 ~n ~d in
  let t2s = ref [ 0. ] in
  let omegas = ref [ init.Steady.Oscillator.omega ] in
  let slices = ref [ Array.map Array.copy init.Steady.Oscillator.grid ] in
  let iter_count = ref 0 in
  let t2 = ref 0. in
  let states = ref init.Steady.Oscillator.grid and omega = ref init.Steady.Oscillator.omega in
  let g = ref (eval_g dae ~n1 ~d ~t2:0. !states !omega) in
  let h = ref h2_init in
  let cache = new_cache () in
  while !t2 < t2_end -. (1e-9 *. t2_end) do
    let hstep = Float.min !h (t2_end -. !t2) in
    let attempt () =
      let full, om_full, it1 =
        step dae ~options ~cache ~d ~phase_row ~t2_new:(!t2 +. hstep) ~h2:hstep ~states0:!states
          ~g0:!g ~omega0:!omega
      in
      let mid, om_mid, it2 =
        step dae ~options ~cache ~d ~phase_row ~t2_new:(!t2 +. (hstep /. 2.)) ~h2:(hstep /. 2.)
          ~states0:!states ~g0:!g ~omega0:!omega
      in
      let g_mid = eval_g dae ~n1 ~d ~t2:(!t2 +. (hstep /. 2.)) mid om_mid in
      let fine, om_fine, it3 =
        step dae ~options ~cache ~d ~phase_row ~t2_new:(!t2 +. hstep) ~h2:(hstep /. 2.) ~states0:mid
          ~g0:g_mid ~omega0:om_mid
      in
      iter_count := !iter_count + it1 + it2 + it3;
      (full, om_full, fine, om_fine)
    in
    match attempt () with
    | exception Failure _ ->
      h := hstep /. 4.;
      if !h < h2_min then failwith "Wampde.Envelope.simulate_adaptive: step underflow"
    | full, om_full, fine, om_fine ->
      (* relative error estimate; each variable is scaled by its own
         peak magnitude over the slice so that components passing
         through zero (and tiny states dominated by Newton solve
         noise) do not stall the step controller *)
      let err = ref (Float.abs (om_fine -. om_full) /. Float.max 1e-12 (Float.abs om_fine)) in
      let comp_scale =
        Array.init n (fun i ->
            let peak = ref 1e-9 in
            for j = 0 to n1 - 1 do
              peak := Float.max !peak (Float.abs fine.(j).(i))
            done;
            !peak)
      in
      for j = 0 to n1 - 1 do
        for i = 0 to n - 1 do
          err := Float.max !err (Float.abs (fine.(j).(i) -. full.(j).(i)) /. comp_scale.(i) /. 3.)
        done
      done;
      if !err <= tol then begin
        Obs.Metrics.incr c_env_steps;
        if Obs.Events.active () then begin
          Obs.Events.emit (Obs.Events.Step_accept { t = !t2; h = hstep });
          Obs.Events.emit
            (Obs.Events.Phase_condition { omega = om_fine; t2 = !t2 +. hstep })
        end;
        t2 := !t2 +. hstep;
        states := fine;
        omega := om_fine;
        g := eval_g dae ~n1 ~d ~t2:!t2 fine om_fine;
        t2s := !t2 :: !t2s;
        omegas := om_fine :: !omegas;
        slices := Array.map Array.copy fine :: !slices;
        let grow = if !err = 0. then 2. else Float.min 2. (0.9 *. ((tol /. !err) ** (1. /. 3.))) in
        h := Float.min h2_max (hstep *. Float.max 1. grow)
      end
      else begin
        Obs.Metrics.incr c_env_rejects;
        if Obs.Events.active () then
          Obs.Events.emit
            (Obs.Events.Step_reject { t = !t2; h = hstep; reason = "error control" });
        h := hstep *. Float.max 0.1 (0.9 *. ((tol /. !err) ** (1. /. 3.)));
        if !h < h2_min then failwith "Wampde.Envelope.simulate_adaptive: step underflow"
      end
  done;
  {
    t2 = Array.of_list (List.rev !t2s);
    omega = Array.of_list (List.rev !omegas);
    slices = Array.of_list (List.rev !slices);
    newton_iterations = !iter_count;
    options;
  }

(* ---------- post-processing ---------- *)

let warping result = Sigproc.Warp.of_samples ~times:result.t2 ~omega:result.omega

let slice result ~index ~component =
  Array.map (fun state -> state.(component)) result.slices.(index)

let eval_bivariate result ~component ~t1 ~t2 =
  let m = Array.length result.t2 in
  (* locate the t2 interval *)
  let idx =
    if t2 <= result.t2.(0) then 0
    else if t2 >= result.t2.(m - 1) then m - 2
    else begin
      let lo = ref 0 and hi = ref (m - 1) in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if result.t2.(mid) <= t2 then lo := mid else hi := mid
      done;
      !lo
    end
  in
  let ta = result.t2.(idx) and tb = result.t2.(idx + 1) in
  let wa = Fourier.Series.interp (slice result ~index:idx ~component) ~period:1. t1 in
  let wb = Fourier.Series.interp (slice result ~index:(idx + 1) ~component) ~period:1. t1 in
  let frac = if tb = ta then 0. else Float.max 0. (Float.min 1. ((t2 -. ta) /. (tb -. ta))) in
  wa +. (frac *. (wb -. wa))

let eval_waveform result ~component t =
  let w = warping result in
  let tau = Sigproc.Warp.phi w t in
  eval_bivariate result ~component ~t1:(Float.rem tau 1.) ~t2:t

let waveform_samples result ~component ~per_cycle =
  let w = warping result in
  let cycles = Sigproc.Warp.total_cycles w in
  let m = Array.length result.t2 in
  let t_end = result.t2.(m - 1) in
  let total = Int.max 2 (int_of_float (Float.ceil (cycles *. float_of_int per_cycle))) in
  let times = Vec.linspace 0. t_end total in
  let values = Vec.map (fun t -> eval_waveform result ~component t) times in
  (times, values)

let amplitude_track result ~component =
  Array.mapi
    (fun m _ ->
      let s = slice result ~index:m ~component in
      let hi = Array.fold_left Float.max neg_infinity s in
      let lo = Array.fold_left Float.min infinity s in
      (hi -. lo) /. 2.)
    result.slices
