open Linalg
module Obs = Wampde_obs

let c_newton_iters = Obs.Metrics.counter "newton.iterations"
let c_env_steps = Obs.Metrics.counter "envelope.steps"
let c_env_rejects = Obs.Metrics.counter "envelope.rejects"
let c_jac_refresh = Obs.Metrics.counter "envelope.jacobian_refreshes"
let c_rescues = Obs.Metrics.counter "envelope.rescues"

type options = {
  n1 : int;
  theta : float;
  phase : Phase.t;
  differentiation : [ `Spectral | `Fd4 ];
  newton : Nonlin.Newton.options;
  solver : Structured.strategy;
  rescue : bool;
  precond_cache : string option;
}

let default_options ?(n1 = 25) ?(phase = Phase.Derivative 0) ?(solver = Structured.auto)
    ?(rescue = true) ?precond_cache () =
  {
    n1;
    theta = 0.5;
    phase;
    differentiation = `Spectral;
    newton = { Nonlin.Newton.default_options with max_iterations = 30; residual_tol = 1e-9 };
    solver;
    rescue;
    precond_cache;
  }

type step_failure = {
  t2 : float;
  h2 : float;
  residual : float;
  iterations : int;
  residual_history : float array;
}

exception Step_failure of step_failure

let () =
  Printexc.register_printer (function
    | Step_failure { t2; h2; residual; iterations; residual_history } ->
      let tail =
        let n = Array.length residual_history in
        let from = Int.max 0 (n - 4) in
        Array.sub residual_history from (n - from)
        |> Array.map (Printf.sprintf "%.3e")
        |> Array.to_list |> String.concat " -> "
      in
      Some
        (Printf.sprintf
           "Wampde.Envelope.Step_failure: Newton failed at t2 = %.6g (h2 = %.3g, residual %.3e \
            after %d iterations; history ... %s)"
           t2 h2 residual iterations tail)
    | _ -> None)

exception Preempted of { t2 : float }

let () =
  Printexc.register_printer (function
    | Preempted { t2 } ->
      Some (Printf.sprintf "Wampde.Envelope.Preempted: run yielded at t2 = %.6g" t2)
    | _ -> None)

type result = {
  t2 : Vec.t;
  omega : Vec.t;
  slices : Vec.t array array;
  newton_iterations : int;
  options : options;
}

(* Flat unknown layout per step: y.(j * n + i) = component i at t1 grid
   point j; y.(n1 * n) = omega. *)

let diff_matrix options =
  match options.differentiation with
  | `Spectral -> Fourier.Series.diff_matrix options.n1
  | `Fd4 -> Fourier.Series.diff_matrix_fd ~order:4 options.n1

(* g_{j,i}(X, omega, t2) = omega (D Q)_{j,i} + f(t2, X_j)_i : the
   "spatial" part of the WaMPDE residual at one collocation point.
   [qs] receives the per-point charges q(X_j) as a side effect so
   residual assembly can reuse them. *)
let eval_g_into dae ~n1 ~d ~t2 ~states ~qs ~dst omega =
  let n = dae.Dae.dim in
  for j = 0 to n1 - 1 do
    qs.(j) <- dae.Dae.q states.(j)
  done;
  for j = 0 to n1 - 1 do
    let fj = dae.Dae.f ~t:t2 states.(j) in
    let dj = d.(j) in
    for i = 0 to n - 1 do
      let s = ref 0. in
      for k = 0 to n1 - 1 do
        s := !s +. (dj.(k) *. qs.(k).(i))
      done;
      dst.((j * n) + i) <- (omega *. !s) +. fj.(i)
    done
  done

let eval_g dae ~n1 ~d ~t2 states omega =
  let n = dae.Dae.dim in
  let qs = Array.make n1 [||] in
  let g = Array.make (n1 * n) 0. in
  eval_g_into dae ~n1 ~d ~t2 ~states ~qs ~dst:g omega;
  g

let unpack ~n1 ~n y = (Array.init n1 (fun j -> Array.sub y (j * n) n), y.(n1 * n))

(* Preallocated per-run buffers for the step's hot loops: residual and
   Jacobian evaluation reuse these instead of re-allocating state
   slices, charge tables and residual vectors on every Newton
   iteration. *)
type scratch = {
  sc_states : Vec.t array;  (* n1 unpack buffers of length n *)
  sc_qs : Vec.t array;  (* q(X_j) at the last residual point *)
  sc_g : Vec.t;  (* spatial residual, n1 * n *)
  sc_r : Vec.t;  (* accepted residual, n1 * n + 1 *)
  sc_rt : Vec.t;  (* trial residual *)
  sc_y : Vec.t;  (* current iterate *)
  sc_trial : Vec.t;  (* trial iterate *)
}

let make_scratch ~n1 ~n =
  let nd = n1 * n in
  {
    sc_states = Array.init n1 (fun _ -> Array.make n 0.);
    sc_qs = Array.make n1 [||];
    sc_g = Array.make nd 0.;
    sc_r = Array.make (nd + 1) 0.;
    sc_rt = Array.make (nd + 1) 0.;
    sc_y = Array.make (nd + 1) 0.;
    sc_trial = Array.make (nd + 1) 0.;
  }

(* Jacobian cache for the chord (stale-Jacobian) Newton iteration on
   the dense path: the collocation Jacobian varies slowly along t2, so
   one factorization typically serves several slow steps.  Refreshed
   automatically when the iteration stops contracting.  The Krylov
   path instead rebuilds its cheap structured operator every iteration
   (true Newton-Krylov). *)
type krylov_op = {
  kop : Structured.op;
  kborder_col : Vec.t;
  kbordered : Structured.bordered;
}

type jac_cache = { mutable lu : Lu.t option }

let new_cache () = { lu = None }

(* One theta step of size h2 from (states0, omega0, g0) at t2_new. *)
let step dae ~options ~cache ~scratch ~d ~phase_row ~t2_new ~h2 ~states0 ~g0 ~omega0 =
  Obs.Span.span
    ~attrs:[ ("t2", Obs.Span.Float t2_new); ("h2", Obs.Span.Float h2) ]
    "envelope.step"
  @@ fun () ->
  (* the inner (chord Newton) layer: leaf counters bumped from here —
     lu.factor, gmres.iterations — are billed to the envelope's Newton *)
  Obs.Scope.with_scope "envelope.newton" @@ fun () ->
  let n = dae.Dae.dim in
  let n1 = options.n1 in
  let theta = options.theta in
  let nd = n1 * n in
  let q0 = Array.map dae.Dae.q states0 in
  let unpack_scratch y =
    for j = 0 to n1 - 1 do
      Array.blit y (j * n) scratch.sc_states.(j) 0 n
    done;
    y.(nd)
  in
  (* Writes the step residual at [y] into [dst]; leaves [sc_states] and
     [sc_qs] holding the unpacked states and charges at [y]. *)
  let residual_into y dst =
    let omega = unpack_scratch y in
    eval_g_into dae ~n1 ~d ~t2:t2_new ~states:scratch.sc_states ~qs:scratch.sc_qs ~dst:scratch.sc_g
      omega;
    let g = scratch.sc_g in
    for j = 0 to n1 - 1 do
      let qj = scratch.sc_qs.(j) in
      let q0j = q0.(j) in
      for i = 0 to n - 1 do
        let idx = (j * n) + i in
        dst.(idx) <-
          qj.(i) -. q0j.(i)
          +. (h2 *. theta *. g.(idx))
          +. (if theta < 1. then h2 *. (1. -. theta) *. g0.(idx) else 0.)
      done
    done;
    (* phase condition row *)
    let s = ref 0. in
    for idx = 0 to nd - 1 do
      s := !s +. (phase_row.(idx) *. y.(idx))
    done;
    dst.(nd) <- !s;
    if Fault.armed () then begin
      Fault.maybe_stall ();
      if Fault.fire Fault.Nan_residual then dst.(0) <- Float.nan
    end
  in
  let jacobian y =
    let omega = unpack_scratch y in
    let states = scratch.sc_states in
    let qs = Array.map dae.Dae.q states in
    let cs = Array.map dae.Dae.dq states in
    let dim = nd + 1 in
    let jac = Mat.zeros dim dim in
    for j = 0 to n1 - 1 do
      let gj = dae.Dae.df ~t:t2_new states.(j) in
      let dj = d.(j) in
      for k = 0 to n1 - 1 do
        let djk = dj.(k) in
        let fast = h2 *. theta *. omega *. djk in
        for i = 0 to n - 1 do
          let row = (j * n) + i in
          for l = 0 to n - 1 do
            let v = ref (fast *. cs.(k).(i).(l)) in
            if j = k then v := !v +. cs.(j).(i).(l) +. (h2 *. theta *. gj.(i).(l));
            if !v <> 0. then jac.(row).((k * n) + l) <- jac.(row).((k * n) + l) +. !v
          done
        done
      done;
      (* d/d omega: h2 theta (D Q)_j *)
      for i = 0 to n - 1 do
        let s = ref 0. in
        for k = 0 to n1 - 1 do
          s := !s +. (dj.(k) *. qs.(k).(i))
        done;
        jac.((j * n) + i).(nd) <- h2 *. theta *. !s
      done
    done;
    for idx = 0 to nd - 1 do
      jac.(nd).(idx) <- phase_row.(idx)
    done;
    jac
  in
  let tol = options.newton.Nonlin.Newton.residual_tol in
  let max_iterations = Int.max 40 options.newton.Nonlin.Newton.max_iterations in
  let iters = ref 0 in
  let history = ref [] in
  let fail rnorm =
    Obs.Metrics.incr c_env_rejects;
    if Obs.Events.active () then
      Obs.Events.emit (Obs.Events.Step_reject { t = t2_new; h = h2; reason = "newton" });
    raise
      (Step_failure
         {
           t2 = t2_new;
           h2;
           residual = rnorm;
           iterations = !iters;
           residual_history = Array.of_list (List.rev !history);
         })
  in
  let refresh y =
    Obs.Metrics.incr c_jac_refresh;
    let lu = Lu.factor (jacobian y) in
    cache.lu <- Some lu;
    lu
  in
  let use_krylov = Structured.use_krylov options.solver ~dim:(nd + 1) in
  (* Build the matrix-free operator and its FFT-diagonalized
     averaged-block preconditioner at [y] (the Krylov analogue of
     [refresh]).  The blocks are evaluated fresh from [y], so the
     cached operator stays valid while [scratch] mutates.  Returns
     [None] if the preconditioner degenerates. *)
  let refresh_krylov y =
    let omega = unpack_scratch y in
    let states = scratch.sc_states in
    let cs = Array.map dae.Dae.dq states in
    let qs = Array.map dae.Dae.q states in
    let b_blocks =
      Array.init n1 (fun j ->
          let gj = dae.Dae.df ~t:t2_new states.(j) in
          Mat.init n n (fun i l -> cs.(j).(i).(l) +. (h2 *. theta *. gj.(i).(l))))
    in
    let op = Structured.make_op ~alpha:(h2 *. theta *. omega) ~d ~c_blocks:cs ~b_blocks in
    let border_col = Array.make nd 0. in
    for j = 0 to n1 - 1 do
      let dj = d.(j) in
      for i = 0 to n - 1 do
        let s = ref 0. in
        for k = 0 to n1 - 1 do
          s := !s +. (dj.(k) *. qs.(k).(i))
        done;
        border_col.((j * n) + i) <- h2 *. theta *. !s
      done
    done;
    match
      let pc =
        match options.precond_cache with
        | None -> Structured.make_precond ~dft:Fourier.Fft.structured_dft op
        | Some prefix ->
          (* key determines the operator shape (n1 and, through the
             circuit prefix, the block size) and buckets the two
             scalars the averaged blocks depend on; nearby iterates,
             macro steps and same-circuit jobs then share one factored
             preconditioner — GMRES still solves the fresh operator *)
          let key =
            Printf.sprintf "%s|n1=%d|w=%d|a=%d" prefix n1
              (Structured.log_bucket omega)
              (Structured.log_bucket (h2 *. theta))
          in
          Structured.make_precond_cached ~dft:Fourier.Fft.structured_dft ~key op
      in
      try Structured.make_bordered pc ~border_col ~border_row:phase_row
      with Structured.Bordered_singular _ ->
        (* degenerate phase border: regularize the Schur scalar rather
           than dropping straight to the dense path *)
        Structured.make_bordered ~gmin:1e-9 pc ~border_col ~border_row:phase_row
    with
    | exception (Cx.Clu.Singular _ | Structured.Bordered_singular _ | Failure _) -> None
    | bordered -> Some { kop = op; kborder_col = border_col; kbordered = bordered }
  in
  (* GMRES solve against a (possibly stale) cached operator.  The inner
     tolerance is the inexact-Newton forcing term: the chord iteration
     only needs a direction accurate to well below its own contraction
     rate, not to machine precision. *)
  let krylov_solve kc r =
    let buf = Array.make (nd + 1) 0. in
    let matvec v =
      Structured.apply_bordered_into kc.kop ~border_col:kc.kborder_col ~border_row:phase_row v
        buf;
      Array.copy buf
    in
    let res =
      Gmres.solve ~matvec
        ~m_inv:(Structured.bordered_apply kc.kbordered)
        ~restart:60 ~max_iter:240 ~tol:1e-6 r
    in
    if res.Gmres.converged then Some res.Gmres.x else None
  in
  let y = ref scratch.sc_y and trial = ref scratch.sc_trial in
  let r = ref scratch.sc_r and rt = ref scratch.sc_rt in
  for j = 0 to n1 - 1 do
    Array.blit states0.(j) 0 !y (j * n) n
  done;
  !y.(nd) <- omega0;
  residual_into !y !r;
  let rnorm = ref (Vec.norm_inf !r) in
  history := [ !rnorm ];
  let fresh = ref false in
  let accept () =
    let ty = !y and tr = !r in
    y := !trial;
    trial := ty;
    r := !rt;
    rt := tr
  in
  let run_chord () =
  (try
     (* a NaN/Inf initial residual would slip through [!rnorm > tol]
        (NaN compares false) and be returned as spuriously converged *)
     if not (Float.is_finite !rnorm) then fail !rnorm;
     while !rnorm > tol do
       if !iters >= max_iterations then fail !rnorm;
       incr iters;
       Obs.Metrics.incr c_newton_iters;
       if Fault.armed () && Fault.fire Fault.Linear_solve then raise (Lu.Singular 0);
       let dense_fallback () =
         Structured.fallback_to_dense ();
         let lu = refresh !y in
         (Lu.solve lu !r, true)
       in
       let dy, is_fresh =
         if use_krylov then begin
           (* true Newton-Krylov: rebuild the (cheap) operator and
              preconditioner at the current iterate every time, so the
              outer iteration keeps Newton's quadratic convergence.
              Chord-style operator reuse is a bad trade here -- it buys
              back a cheap build but pays extra GMRES solves. *)
           match refresh_krylov !y with
           | Some kc -> (
             match krylov_solve kc !r with
             | Some dy -> (dy, true)
             | None -> dense_fallback ())
           | None -> dense_fallback ()
         end
         else
           match cache.lu with
           | Some lu -> (Lu.solve lu !r, !fresh)
           | None ->
             let lu = refresh !y in
             (Lu.solve lu !r, true)
       in
       fresh := is_fresh;
       if Fault.armed () && Fault.fire Fault.Newton_diverge then Vec.scale_inplace 1e8 dy;
       let yv = !y and tv = !trial in
       for i = 0 to nd do
         tv.(i) <- yv.(i) -. dy.(i)
       done;
       residual_into tv !rt;
       let rtnorm = Vec.norm_inf !rt in
       if Float.is_finite rtnorm && (rtnorm <= tol || rtnorm < 0.7 *. !rnorm) then begin
         accept ();
         rnorm := rtnorm;
         history := rtnorm :: !history;
         fresh := false;
         if Obs.Events.active () then
           Obs.Events.emit
             (Obs.Events.Newton_iter
                { solver = "envelope.chord"; k = !iters; residual = rtnorm; damping = 1. })
       end
       else if not !fresh then begin
         (* stale Jacobian stopped contracting: refresh and retry *)
         ignore (refresh !y);
         fresh := true
       end
       else begin
         (* fresh Jacobian and still no contraction: damped line search *)
         let rec backtrack lambda =
           if lambda < 1e-4 then fail !rnorm
           else begin
             let yv = !y and tv = !trial in
             for i = 0 to nd do
               tv.(i) <- yv.(i) -. (lambda *. dy.(i))
             done;
             residual_into tv !rt;
             let nl = Vec.norm_inf !rt in
             if Float.is_finite nl && nl < !rnorm then begin
               accept ();
               rnorm := nl;
               history := nl :: !history
             end
             else backtrack (lambda /. 2.)
           end
         in
         backtrack 0.5;
         (* the next iteration refactors at the new point *)
         cache.lu <- None;
         fresh := false
       end
     done
   with Lu.Singular _ -> fail !rnorm);
  (* estimated contraction rate from the residual trail (newest-first
     history includes the initial residual) *)
  (if !iters >= 1 then
     match !history with
     | last :: _ ->
       let first = List.nth !history (List.length !history - 1) in
       let rate =
         if first > 0. && last >= 0. then (last /. first) ** (1. /. float_of_int !iters)
         else nan
       in
       Obs.Health.note_newton ~t:t2_new ~iterations:!iters ~rate ()
     | [] -> ());
  let states, omega = unpack ~n1 ~n !y in
  (states, omega, !iters)
  in
  if not options.rescue then run_chord ()
  else
    try run_chord ()
    with Step_failure _ as chord_failure ->
      (* The chord iteration is lost.  Cold-start the globalization
         cascade on the same step system (dense Jacobian) before
         surfacing the failure to the step controller. *)
      let residual yv =
        let dst = Array.make (nd + 1) 0. in
        residual_into yv dst;
        dst
      in
      let y0 = Array.make (nd + 1) 0. in
      for j = 0 to n1 - 1 do
        Array.blit states0.(j) 0 y0 (j * n) n
      done;
      y0.(nd) <- omega0;
      let outcome =
        Nonlin.Polyalg.solve
          ~options:{ options.newton with Nonlin.Newton.residual_tol = tol }
          ~label:"envelope.rescue"
          ~cascade:[ Nonlin.Polyalg.Trust_region; Nonlin.Polyalg.Pseudo_transient ]
          ~jacobian ~residual y0
      in
      let report = outcome.Nonlin.Polyalg.report in
      if report.Nonlin.Newton.converged then begin
        Obs.Metrics.incr c_rescues;
        let states, omega = unpack ~n1 ~n report.Nonlin.Newton.x in
        (states, omega, !iters + report.Nonlin.Newton.iterations)
      end
      else raise chord_failure

let check_init options (init : Steady.Oscillator.orbit) =
  if Array.length init.Steady.Oscillator.grid <> options.n1 then
    invalid_arg "Wampde.Envelope: init grid size differs from options.n1";
  if options.n1 mod 2 = 0 then invalid_arg "Wampde.Envelope: n1 must be odd"

(* The phase condition only pins the solution within its own constraint
   manifold; starting OFF the manifold can make Newton land on a valid
   but non-compact solution branch (the paper's footnote 3: choosing a
   slowly-varying phase condition "is the key to compact numerical
   representation").  For the Fourier condition we therefore rotate the
   initial orbit in t1 so that Im Xhat^k_l = 0 holds exactly at t2 = 0;
   a t1-rotation maps solutions to solutions with unchanged omega. *)
let align_init options (init : Steady.Oscillator.orbit) =
  match options.phase with
  | Phase.Derivative _ -> init
  | Phase.Fourier { component; harmonic } ->
    let n1 = options.n1 in
    let grid = init.Steady.Oscillator.grid in
    let n = Array.length grid.(0) in
    let samples = Array.map (fun s -> s.(component)) grid in
    let coeffs = Fourier.Series.coeffs samples in
    let x_l = Fourier.Series.harmonic coeffs harmonic in
    (* sampling at t1 + delta multiplies X_l by e^{2 pi j l delta}; choose
       delta so the rotated coefficient becomes real *)
    let delta = -.Complex.arg x_l /. (2. *. Float.pi *. float_of_int harmonic) in
    if Float.abs delta < 1e-12 then init
    else begin
      let rotated =
        Array.init n1 (fun j ->
            Vec.init n (fun v ->
                let var_samples = Array.map (fun s -> s.(v)) grid in
                Fourier.Series.interp var_samples ~period:1.
                  ((float_of_int j /. float_of_int n1) +. delta)))
      in
      { init with Steady.Oscillator.grid = rotated }
    end

(* t1-grid spectral health of an accepted macro step.  Gated on the
   global telemetry flag at the call site: the per-component FFTs are
   cheap relative to a Newton solve but not free. *)
let note_spectral_health ~t states =
  if Obs.enabled () then begin
    let tol = (Obs.Health.thresholds ()).Obs.Health.spectral_tol in
    let r = Fourier.Series.grid_resolution ~tol states in
    Obs.Health.note_spectrum ~t ~tail:r.Fourier.Series.tail ~needed:r.Fourier.Series.needed
      ~available:r.Fourier.Series.available ()
  end

let simulate dae ~options ~t2_end ~h2 ~init =
  check_init options init;
  Obs.Span.span
    ~attrs:
      [
        ("n1", Obs.Span.Int options.n1);
        ("dim", Obs.Span.Int dae.Dae.dim);
        ("t2", Obs.Span.Float t2_end);
      ]
    "envelope.simulate"
  @@ fun () ->
  Obs.Scope.with_scope "envelope.outer" @@ fun () ->
  let init = align_init options init in
  let n1 = options.n1 and n = dae.Dae.dim in
  let d = diff_matrix options in
  let phase_row = Phase.row options.phase ~n1 ~n ~d in
  let t2s = ref [ 0. ] in
  let omegas = ref [ init.Steady.Oscillator.omega ] in
  let slices = ref [ Array.map Array.copy init.Steady.Oscillator.grid ] in
  let iter_count = ref 0 in
  let t2 = ref 0. in
  let states = ref init.Steady.Oscillator.grid and omega = ref init.Steady.Oscillator.omega in
  let g = ref (eval_g dae ~n1 ~d ~t2:0. !states !omega) in
  let cache = new_cache () in
  let scratch = make_scratch ~n1 ~n in
  while !t2 < t2_end -. (1e-9 *. t2_end) do
    let h = Float.min h2 (t2_end -. !t2) in
    let t2_new = !t2 +. h in
    let states', omega', iters =
      step dae ~options ~cache ~scratch ~d ~phase_row ~t2_new ~h2:h ~states0:!states ~g0:!g
        ~omega0:!omega
    in
    iter_count := !iter_count + iters;
    states := states';
    omega := omega';
    g := eval_g dae ~n1 ~d ~t2:t2_new states' omega';
    Obs.Metrics.incr c_env_steps;
    Obs.Health.note_decision ~t:!t2 ~outcome:`Accept ();
    note_spectral_health ~t:t2_new states';
    if Obs.Events.active () then begin
      Obs.Events.emit (Obs.Events.Step_accept { t = !t2; h });
      Obs.Events.emit (Obs.Events.Phase_condition { omega = omega'; t2 = t2_new })
    end;
    t2 := t2_new;
    t2s := t2_new :: !t2s;
    omegas := omega' :: !omegas;
    slices := Array.map Array.copy states' :: !slices
  done;
  {
    t2 = Array.of_list (List.rev !t2s);
    omega = Array.of_list (List.rev !omegas);
    slices = Array.of_list (List.rev !slices);
    newton_iterations = !iter_count;
    options;
  }

(* ---------- adaptive stepping with checkpoint/restart ---------- *)

let c_escalations = Obs.Metrics.counter "controller.escalations"

let checkpoint_sections ~options ~dim ~t2_end ~ctrl ~escalated ~t2 ~omega ~states ~t2s ~omegas
    ~slices =
  [
    ("kind", Checkpoint.Text "envelope");
    ("n1", Checkpoint.Scalar (float_of_int options.n1));
    ("dim", Checkpoint.Scalar (float_of_int dim));
    ("theta", Checkpoint.Scalar options.theta);
    ("t2_end", Checkpoint.Scalar t2_end);
    ("t2", Checkpoint.Scalar t2);
    ("omega", Checkpoint.Scalar omega);
    ("escalated", Checkpoint.Scalar (if escalated then 1. else 0.));
    ( "controller",
      Checkpoint.Vector (Step_control.snapshot_to_floats (Step_control.snapshot ctrl)) );
    ("states", Checkpoint.Matrix (Array.map Array.copy states));
    ("hist_t2", Checkpoint.Vector (Array.of_list (List.rev t2s)));
    ("hist_omega", Checkpoint.Vector (Array.of_list (List.rev omegas)));
    ( "hist_slices",
      Checkpoint.Tensor (Array.of_list (List.rev_map (Array.map Array.copy) slices)) );
  ]

let simulate_controlled dae ~options ~control ?h2_init ?checkpoint ?resume ?on_accept ?preempt
    ~t2_end ~init () =
  check_init options init;
  Obs.Span.span
    ~attrs:
      [
        ("n1", Obs.Span.Int options.n1);
        ("dim", Obs.Span.Int dae.Dae.dim);
        ("t2", Obs.Span.Float t2_end);
      ]
    "envelope.simulate_controlled"
  @@ fun () ->
  Obs.Scope.with_scope "envelope.outer" @@ fun () ->
  let init = align_init options init in
  let n1 = options.n1 and n = dae.Dae.dim in
  let nd = n1 * n in
  (* the theta method's order decides the step-doubling denominator *)
  let order = if options.theta < 1. then 2 else 1 in
  let control = { control with Step_control.order } in
  let control =
    if Float.is_finite control.Step_control.h_max then control
    else { control with Step_control.h_max = t2_end /. 2. }
  in
  let denom = Step_control.richardson_denom ~order in
  let d = diff_matrix options in
  let phase_row = Phase.row options.phase ~n1 ~n ~d in
  let t2s = ref [] and omegas = ref [] and slices = ref [] in
  let t2 = ref 0. in
  let states = ref init.Steady.Oscillator.grid and omega = ref init.Steady.Oscillator.omega in
  let escalated = ref false in
  let iter_count = ref 0 in
  let ctrl =
    Step_control.create control
      ~h_init:(match h2_init with Some h -> h | None -> t2_end /. 50.)
  in
  (match resume with
   | None ->
     t2s := [ 0. ];
     omegas := [ !omega ];
     slices := [ Array.map Array.copy !states ]
   | Some path ->
     let ck = Checkpoint.load ~path in
     let expect name v =
       let got = Checkpoint.scalar ck name in
       if got <> v then
         raise
           (Checkpoint.Corrupt
              (Printf.sprintf "checkpoint %s mismatch: file has %g, run has %g" name got v))
     in
     if Checkpoint.text ck "kind" <> "envelope" then
       raise (Checkpoint.Corrupt "not an envelope checkpoint");
     expect "n1" (float_of_int n1);
     expect "dim" (float_of_int n);
     expect "theta" options.theta;
     t2 := Checkpoint.scalar ck "t2";
     omega := Checkpoint.scalar ck "omega";
     states := Array.map Array.copy (Checkpoint.matrix ck "states");
     escalated := Checkpoint.scalar ck "escalated" <> 0.;
     Step_control.restore ctrl
       (Step_control.snapshot_of_floats (Checkpoint.vector ck "controller"));
     t2s := List.rev (Array.to_list (Checkpoint.vector ck "hist_t2"));
     omegas := List.rev (Array.to_list (Checkpoint.vector ck "hist_omega"));
     slices := List.rev_map (Array.map Array.copy) (Array.to_list (Checkpoint.tensor ck "hist_slices")));
  let g = ref (eval_g dae ~n1 ~d ~t2:!t2 !states !omega) in
  let cache = new_cache () in
  let scratch = make_scratch ~n1 ~n in
  let since_ckpt = ref 0 in
  while !t2 < t2_end -. (1e-9 *. t2_end) do
    let hstep = Step_control.propose ctrl ~remaining:(t2_end -. !t2) in
    let opts_now =
      if !escalated then { options with solver = Structured.Dense } else options
    in
    (* start every macro attempt with a cold Jacobian cache so a resumed
       run retraces the original bit-for-bit (a warm chord cache from the
       previous step is the one piece of state a checkpoint cannot
       carry) *)
    cache.lu <- None;
    let attempt () =
      let full, om_full, it1 =
        step dae ~options:opts_now ~cache ~scratch ~d ~phase_row ~t2_new:(!t2 +. hstep)
          ~h2:hstep ~states0:!states ~g0:!g ~omega0:!omega
      in
      let mid, om_mid, it2 =
        step dae ~options:opts_now ~cache ~scratch ~d ~phase_row
          ~t2_new:(!t2 +. (hstep /. 2.)) ~h2:(hstep /. 2.) ~states0:!states ~g0:!g
          ~omega0:!omega
      in
      let g_mid = eval_g dae ~n1 ~d ~t2:(!t2 +. (hstep /. 2.)) mid om_mid in
      let fine, om_fine, it3 =
        step dae ~options:opts_now ~cache ~scratch ~d ~phase_row ~t2_new:(!t2 +. hstep)
          ~h2:(hstep /. 2.) ~states0:mid ~g0:g_mid ~omega0:om_mid
      in
      iter_count := !iter_count + it1 + it2 + it3;
      (full, om_full, fine, om_fine)
    in
    match attempt () with
    | exception ((Step_failure _ | Lu.Singular _ | Failure _) as exn) ->
      let reason =
        match exn with
        | Step_failure _ -> "newton"
        | Lu.Singular _ -> "singular factorization"
        | _ -> "solver failure"
      in
      ignore (Step_control.failure_retry ctrl ~t:!t2 ~h_used:hstep ~reason);
      if
        Step_control.should_escalate ctrl && (not !escalated)
        && Structured.use_krylov options.solver ~dim:(nd + 1)
      then begin
        (* repeated Newton stalls on the Krylov path: the inexact
           directions, not the step size, may be the problem — finish
           the run on dense LU *)
        escalated := true;
        Obs.Metrics.incr c_escalations;
        Obs.Health.note_escalation ~t:!t2 ()
      end
    | full, om_full, fine, om_fine ->
      let err =
        let s = ref 0. in
        for j = 0 to n1 - 1 do
          for i = 0 to n - 1 do
            let e =
              Step_control.scaled control ~y:fine.(j).(i)
                ~err:((fine.(j).(i) -. full.(j).(i)) /. denom)
            in
            s := !s +. (e *. e)
          done
        done;
        let e_om = Step_control.scaled control ~y:om_fine ~err:((om_fine -. om_full) /. denom) in
        s := !s +. (e_om *. e_om);
        sqrt (!s /. float_of_int (nd + 1))
      in
      (match Step_control.decide ctrl ~t:!t2 ~h_used:hstep ~err with
       | Step_control.Reject _ -> Obs.Metrics.incr c_env_rejects
       | Step_control.Accept _ ->
         t2 := !t2 +. hstep;
         states := fine;
         omega := om_fine;
         g := eval_g dae ~n1 ~d ~t2:!t2 fine om_fine;
         Obs.Metrics.incr c_env_steps;
         note_spectral_health ~t:!t2 fine;
         if Obs.Events.active () then
           Obs.Events.emit (Obs.Events.Phase_condition { omega = om_fine; t2 = !t2 });
         t2s := !t2 :: !t2s;
         omegas := om_fine :: !omegas;
         slices := Array.map Array.copy fine :: !slices;
         let save_checkpoint path =
           Checkpoint.save ~path
             (checkpoint_sections ~options ~dim:n ~t2_end ~ctrl ~escalated:!escalated
                ~t2:!t2 ~omega:!omega ~states:!states ~t2s:!t2s ~omegas:!omegas
                ~slices:!slices)
         in
         (match checkpoint with
          | None -> ()
          | Some (path, every) ->
            incr since_ckpt;
            if !since_ckpt >= every then begin
              since_ckpt := 0;
              save_checkpoint path
            end);
         (match on_accept with Some f -> f ~t2:!t2 ~omega:om_fine | None -> ());
         (* cooperative preemption: yield only on an accepted-step
            boundary, after a forced checkpoint write, so the caller
            can resume bit-compatibly with the uninterrupted run *)
         (match preempt with
          | Some should_yield
            when should_yield ~t2:!t2 && !t2 < t2_end -. (1e-9 *. t2_end) ->
            (match checkpoint with
             | Some (path, _) ->
               since_ckpt := 0;
               save_checkpoint path
             | None -> ());
            raise (Preempted { t2 = !t2 })
          | _ -> ()))
  done;
  {
    t2 = Array.of_list (List.rev !t2s);
    omega = Array.of_list (List.rev !omegas);
    slices = Array.of_list (List.rev !slices);
    newton_iterations = !iter_count;
    options;
  }

let simulate_adaptive dae ?(h2_min = 1e-9) ?h2_max ~options ~t2_end ~h2_init ~tol ~init () =
  let h_max = match h2_max with Some h -> h | None -> t2_end /. 5. in
  let control =
    Step_control.default_options ~rtol:tol ~atol:(tol /. 1000.) ~h_min:h2_min ~h_max ()
  in
  simulate_controlled dae ~options ~control ~h2_init ~t2_end ~init ()

(* ---------- post-processing ---------- *)

let warping result = Sigproc.Warp.of_samples ~times:result.t2 ~omega:result.omega

let slice result ~index ~component =
  Array.map (fun state -> state.(component)) result.slices.(index)

let eval_bivariate result ~component ~t1 ~t2 =
  let m = Array.length result.t2 in
  (* locate the t2 interval *)
  let idx =
    if t2 <= result.t2.(0) then 0
    else if t2 >= result.t2.(m - 1) then m - 2
    else begin
      let lo = ref 0 and hi = ref (m - 1) in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if result.t2.(mid) <= t2 then lo := mid else hi := mid
      done;
      !lo
    end
  in
  let ta = result.t2.(idx) and tb = result.t2.(idx + 1) in
  let wa = Fourier.Series.interp (slice result ~index:idx ~component) ~period:1. t1 in
  let wb = Fourier.Series.interp (slice result ~index:(idx + 1) ~component) ~period:1. t1 in
  let frac = if tb = ta then 0. else Float.max 0. (Float.min 1. ((t2 -. ta) /. (tb -. ta))) in
  wa +. (frac *. (wb -. wa))

let eval_waveform result ~component t =
  let w = warping result in
  let tau = Sigproc.Warp.phi w t in
  eval_bivariate result ~component ~t1:(Float.rem tau 1.) ~t2:t

let waveform_samples result ~component ~per_cycle =
  let w = warping result in
  let cycles = Sigproc.Warp.total_cycles w in
  let m = Array.length result.t2 in
  let t_end = result.t2.(m - 1) in
  let total = Int.max 2 (int_of_float (Float.ceil (cycles *. float_of_int per_cycle))) in
  let times = Vec.linspace 0. t_end total in
  let values = Vec.map (fun t -> eval_waveform result ~component t) times in
  (times, values)

let amplitude_track result ~component =
  Array.mapi
    (fun m _ ->
      let s = slice result ~index:m ~component in
      let hi = Array.fold_left Float.max neg_infinity s in
      let lo = Array.fold_left Float.min infinity s in
      (hi -. lo) /. 2.)
    result.slices
