module Obs = Wampde_obs

let c_accepted = Obs.Metrics.counter "step.accepted"
let c_rejected = Obs.Metrics.counter "step.rejected"
let c_retried = Obs.Metrics.counter "step.retried"
let g_h = Obs.Metrics.gauge "controller.h2"

type options = {
  rtol : float;
  atol : float;
  h_min : float;
  h_max : float;
  safety : float;
  max_growth : float;
  min_shrink : float;
  order : int;
  max_failures : int;
}

let default_options ?(rtol = 1e-3) ?(atol = 1e-6) ?(h_min = 1e-9) ?(h_max = infinity)
    ?(safety = 0.9) ?(max_growth = 2.) ?(min_shrink = 0.1) ?(order = 2) ?(max_failures = 8) () =
  if rtol <= 0. || atol <= 0. then invalid_arg "Step_control: tolerances must be positive";
  if h_min <= 0. || h_max < h_min then invalid_arg "Step_control: need 0 < h_min <= h_max";
  if safety <= 0. || safety > 1. then invalid_arg "Step_control: safety in (0, 1]";
  if max_growth < 1. || min_shrink <= 0. || min_shrink > 1. then
    invalid_arg "Step_control: growth/shrink clamps out of range";
  if order < 1 then invalid_arg "Step_control: order must be >= 1";
  { rtol; atol; h_min; h_max; safety; max_growth; min_shrink; order; max_failures }

exception Underflow of { t : float; h : float }

let () =
  Printexc.register_printer (function
    | Underflow { t; h } ->
      Some
        (Printf.sprintf
           "Step_control.Underflow: step control drove h below h_min at t = %.6g (h = %.3g)" t h)
    | _ -> None)

type t = {
  opts : options;
  mutable h : float;
  mutable err_prev : float;  (* PI memory: scaled error of the last accepted step *)
  mutable accepted : int;
  mutable rejected : int;
  mutable retried : int;
  mutable failures : int;  (* consecutive solver failures on the current step *)
}

let clamp opts h = Float.min opts.h_max (Float.max opts.h_min h)

let create opts ~h_init =
  let h = clamp opts h_init in
  Obs.Metrics.set g_h h;
  { opts; h; err_prev = 1.; accepted = 0; rejected = 0; retried = 0; failures = 0 }

let options t = t.opts
let h t = t.h
let propose t ~remaining = Float.min t.h remaining

let scaled opts ~y ~err = Float.abs err /. (opts.atol +. (opts.rtol *. Float.abs y))

let error_norm opts ~y ~err =
  let n = Array.length err in
  if n = 0 then 0.
  else begin
    let s = ref 0. in
    for i = 0 to n - 1 do
      let e = scaled opts ~y:y.(i) ~err:err.(i) in
      s := !s +. (e *. e)
    done;
    sqrt (!s /. float_of_int n)
  end

let richardson_denom ~order = (2. ** float_of_int order) -. 1.

type decision = Accept of float | Reject of float

(* Hairer-style PI controller: on acceptance the next step is
   h * safety * err^(-0.7/(p+1)) * err_prev^(0.4/(p+1)); the integral
   term damps the oscillatory accept/reject cycling a pure I controller
   shows near the tolerance boundary.  Errors are floored at 1e-10 so a
   vanishing estimate maps to the max-growth clamp, not infinity. *)
let decide t ~t:t_now ~h_used ~err =
  let opts = t.opts in
  let p1 = float_of_int (opts.order + 1) in
  if Float.is_finite err && err <= 1. then begin
    let e = Float.max err 1e-10 in
    let factor =
      opts.safety *. (e ** (-0.7 /. p1)) *. (Float.max t.err_prev 1e-10 ** (0.4 /. p1))
    in
    let factor = Float.min opts.max_growth (Float.max opts.min_shrink factor) in
    t.err_prev <- e;
    t.accepted <- t.accepted + 1;
    t.failures <- 0;
    t.h <- clamp opts (h_used *. factor);
    Obs.Metrics.incr c_accepted;
    Obs.Metrics.set g_h t.h;
    Obs.Health.note_decision ~t:t_now ~outcome:`Accept ();
    if Obs.Events.active () then Obs.Events.emit (Obs.Events.Step_accept { t = t_now; h = h_used });
    Accept t.h
  end
  else begin
    let e = if Float.is_finite err then err else 1e10 in
    let factor =
      Float.min 0.9 (Float.max opts.min_shrink (opts.safety *. (e ** (-1. /. p1))))
    in
    let h_retry = h_used *. factor in
    t.rejected <- t.rejected + 1;
    Obs.Metrics.incr c_rejected;
    Obs.Health.note_decision ~t:t_now ~outcome:`Reject ();
    if Obs.Events.active () then
      Obs.Events.emit (Obs.Events.Step_reject { t = t_now; h = h_used; reason = "error control" });
    if h_retry < opts.h_min then raise (Underflow { t = t_now; h = h_retry });
    t.h <- h_retry;
    Obs.Metrics.set g_h t.h;
    Reject t.h
  end

let record_accept t ~t:t_now ~h_used =
  t.accepted <- t.accepted + 1;
  t.failures <- 0;
  t.h <- clamp t.opts (h_used *. t.opts.max_growth);
  Obs.Metrics.incr c_accepted;
  Obs.Metrics.set g_h t.h;
  Obs.Health.note_decision ~t:t_now ~outcome:`Accept ();
  if Obs.Events.active () then Obs.Events.emit (Obs.Events.Step_accept { t = t_now; h = h_used })

let failure_retry t ~t:t_now ~h_used ~reason =
  t.retried <- t.retried + 1;
  t.failures <- t.failures + 1;
  Obs.Metrics.incr c_retried;
  Obs.Health.note_decision ~t:t_now ~outcome:`Retry ();
  let h_retry = h_used /. 2. in
  if Obs.Events.active () then
    Obs.Events.emit (Obs.Events.Step_retry { t = t_now; h = h_used; h_next = h_retry; reason });
  if h_retry < t.opts.h_min || t.failures > t.opts.max_failures then
    raise (Underflow { t = t_now; h = h_retry });
  t.h <- h_retry;
  Obs.Metrics.set g_h t.h;
  h_retry

let should_escalate t = t.failures >= 2

let accepted t = t.accepted
let rejected t = t.rejected
let retried t = t.retried

type snapshot = {
  s_h : float;
  s_err_prev : float;
  s_accepted : int;
  s_rejected : int;
  s_retried : int;
  s_failures : int;
}

let snapshot t =
  {
    s_h = t.h;
    s_err_prev = t.err_prev;
    s_accepted = t.accepted;
    s_rejected = t.rejected;
    s_retried = t.retried;
    s_failures = t.failures;
  }

let restore t s =
  t.h <- s.s_h;
  t.err_prev <- s.s_err_prev;
  t.accepted <- s.s_accepted;
  t.rejected <- s.s_rejected;
  t.retried <- s.s_retried;
  t.failures <- s.s_failures;
  Obs.Metrics.set g_h t.h

let snapshot_to_floats s =
  [|
    s.s_h;
    s.s_err_prev;
    float_of_int s.s_accepted;
    float_of_int s.s_rejected;
    float_of_int s.s_retried;
    float_of_int s.s_failures;
  |]

let snapshot_of_floats a =
  if Array.length a <> 6 then invalid_arg "Step_control.snapshot_of_floats: expected 6 entries";
  {
    s_h = a.(0);
    s_err_prev = a.(1);
    s_accepted = int_of_float a.(2);
    s_rejected = int_of_float a.(3);
    s_retried = int_of_float a.(4);
    s_failures = int_of_float a.(5);
  }
