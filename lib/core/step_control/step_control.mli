(** Error-controlled slow-axis step-size policy.

    Every time-stepping solver in the repository (transient theta
    steps, the WaMPDE envelope, the MPDE line-of-lines march and the
    harmonic-balance envelope) advances some slow variable with a step
    [h] that has to balance local truncation error against Newton
    robustness.  This module centralizes that policy: a weighted
    rtol/atol error norm, a PI (proportional-integral) step-size
    controller with safety factor and growth/shrink clamps, and a
    failure-recovery path that halves the step on Newton stalls and
    signals when the caller should escalate from the Krylov linear
    solver to dense LU.

    Telemetry: accepted, rejected and retried steps bump the
    [step.accepted] / [step.rejected] / [step.retried] counters, the
    current step size is mirrored in the [controller.h2] gauge, and
    accept/reject/retry decisions emit {!Wampde_obs.Events} when a
    subscriber is installed.

    The controller state is a small, flat record so checkpoint files
    can serialize it exactly (see {!snapshot}); restoring a snapshot
    reproduces the controller's future decisions bit-for-bit. *)

open Linalg

type options = {
  rtol : float;  (** relative tolerance (per component) *)
  atol : float;  (** absolute tolerance floor *)
  h_min : float;  (** below this, rejection raises {!Underflow} *)
  h_max : float;  (** accepted steps never grow beyond this *)
  safety : float;  (** multiplier on the optimal-step estimate (0.9) *)
  max_growth : float;  (** largest per-step growth factor (2) *)
  min_shrink : float;  (** smallest per-rejection shrink factor (0.1) *)
  order : int;  (** order of the underlying method (LTE ~ h^(order+1)) *)
  max_failures : int;  (** consecutive solver failures before giving up *)
}

val default_options :
  ?rtol:float ->
  ?atol:float ->
  ?h_min:float ->
  ?h_max:float ->
  ?safety:float ->
  ?max_growth:float ->
  ?min_shrink:float ->
  ?order:int ->
  ?max_failures:int ->
  unit ->
  options

(** Raised when error control or failure recovery would push the step
    below [h_min]: the problem is stiffer than the tolerances allow. *)
exception Underflow of { t : float; h : float }

(** Mutable controller state for one integration run. *)
type t

(** [create options ~h_init] starts a controller at step
    [clamp h_init [h_min, h_max]]. *)
val create : options -> h_init:float -> t

val options : t -> options

(** Current step-size proposal. *)
val h : t -> float

(** [propose ctrl ~remaining] is the step to attempt next:
    [min (h ctrl) remaining]. *)
val propose : t -> remaining:float -> float

(** {1 Error measurement} *)

(** [scaled opts ~y ~err] is [|err| / (atol + rtol |y|)]: one
    component's contribution before RMS accumulation. *)
val scaled : options -> y:float -> err:float -> float

(** [error_norm opts ~y ~err] is the weighted RMS norm
    [sqrt (1/n sum_i (err_i / (atol + rtol |y_i|))^2)]; values [<= 1]
    mean the step passes the tolerance. *)
val error_norm : options -> y:Vec.t -> err:Vec.t -> float

(** [richardson_denom ~order] is [2^order - 1], the step-doubling
    denominator: for a method of the given order, the local error of
    the two-half-steps solution is [(fine - full) / richardson_denom]. *)
val richardson_denom : order:int -> float

(** {1 Decisions} *)

type decision =
  | Accept of float  (** step accepted; the payload is the next [h] *)
  | Reject of float  (** error too large; retry with the payload [h] *)

(** [decide ctrl ~t ~h_used ~err] applies the PI controller to the
    scaled error [err] of a completed step of size [h_used] ending at
    slow time [t].  Raises {!Underflow} if a rejection would shrink
    below [h_min].  Updates the controller's internal memory, the
    [step.*] counters and the [controller.h2] gauge, and emits
    [Step_accept] / [Step_reject] events. *)
val decide : t -> t:float -> h_used:float -> err:float -> decision

(** [record_accept ctrl ~t ~h_used] books an accepted step for callers
    that march at a fixed target step and only use the controller for
    failure recovery: resets the failure streak and lets [h] grow back
    toward [h_max] by [max_growth] per accepted step. *)
val record_accept : t -> t:float -> h_used:float -> unit

(** [failure_retry ctrl ~t ~h_used ~reason] books a solver failure
    (Newton stall, singular factorization) on a step of size [h_used]:
    halves the step, bumps [step.retried], emits a [Step_retry] event
    and returns the new step.  Raises {!Underflow} when the halved step
    falls below [h_min] or the failure streak exceeds [max_failures]. *)
val failure_retry : t -> t:float -> h_used:float -> reason:string -> float

(** True once [>= 2] consecutive solver failures have been recorded:
    the caller should switch its linear solver from Krylov to dense LU
    before retrying (the preconditioner, not the step size, is the
    likely culprit). *)
val should_escalate : t -> bool

(** {1 Statistics} *)

val accepted : t -> int
val rejected : t -> int
val retried : t -> int

(** {1 Checkpointing} *)

(** Complete controller state; restoring it resumes the run with
    bit-identical future decisions. *)
type snapshot = {
  s_h : float;
  s_err_prev : float;
  s_accepted : int;
  s_rejected : int;
  s_retried : int;
  s_failures : int;  (** consecutive-failure streak *)
}

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit

(** Flat encoding for checkpoint files (6 floats, stable layout). *)
val snapshot_to_floats : snapshot -> float array

(** Inverse of {!snapshot_to_floats}; raises [Invalid_argument] on a
    wrong-sized array. *)
val snapshot_of_floats : float array -> snapshot
