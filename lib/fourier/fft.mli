(** Fast Fourier transforms.

    Power-of-two sizes use an iterative radix-2 Cooley–Tukey transform;
    every other size is handled with Bluestein's chirp-z algorithm, so
    [fft] is O(n log n) for all [n].  The forward transform uses the
    engineering sign convention [X_k = sum_j x_j e^{-2 pi i j k / n}];
    [ifft] divides by [n]. *)

open Linalg

(** [fft x] is the forward discrete Fourier transform of [x]. *)
val fft : Cx.Cvec.t -> Cx.Cvec.t

(** [ifft x] is the inverse transform; [ifft (fft x) = x]. *)
val ifft : Cx.Cvec.t -> Cx.Cvec.t

(** [fft_real x] is [fft] of a real signal. *)
val fft_real : Vec.t -> Cx.Cvec.t

(** [dft x] is the naive O(n^2) transform, kept as a reference
    implementation for testing. *)
val dft : Cx.Cvec.t -> Cx.Cvec.t

(** [structured_dft] packages {!fft}/{!ifft} for injection into
    [Linalg.Structured] (which sits below this library and defaults to
    a naive transform). *)
val structured_dft : Structured.dft

(** [is_power_of_two n] is true when [n] is a positive power of two. *)
val is_power_of_two : int -> bool

(** [next_power_of_two n] is the smallest power of two [>= n]. *)
val next_power_of_two : int -> int
