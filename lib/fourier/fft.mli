(** Fast Fourier transforms.

    Power-of-two sizes use an iterative radix-2 Cooley–Tukey transform;
    every other size is handled with Bluestein's chirp-z algorithm, so
    [fft] is O(n log n) for all [n].  The forward transform uses the
    engineering sign convention [X_k = sum_j x_j e^{-2 pi i j k / n}];
    [ifft] divides by [n]. *)

open Linalg

(** [fft x] is the forward discrete Fourier transform of [x]. *)
val fft : Cx.Cvec.t -> Cx.Cvec.t

(** [ifft x] is the inverse transform; [ifft (fft x) = x]. *)
val ifft : Cx.Cvec.t -> Cx.Cvec.t

(** [fft_real x] is [fft] of a real signal. *)
val fft_real : Vec.t -> Cx.Cvec.t

(** [fft_pair_inplace re im] transforms the complex signal
    [re + i im] in place (same arithmetic as {!fft}, no boxed
    [Complex.t] allocation); the batched form used by the
    block-preconditioner's two-components-per-transform pairing.
    Domain-safe: the Bluestein plan cache is shared under a mutex and
    convolution scratch is per-domain. *)
val fft_pair_inplace : Vec.t -> Vec.t -> unit

(** [ifft_pair_inplace re im] is the matching in-place inverse
    (divides by [n]). *)
val ifft_pair_inplace : Vec.t -> Vec.t -> unit

(** [dft x] is the naive O(n^2) transform, kept as a reference
    implementation for testing. *)
val dft : Cx.Cvec.t -> Cx.Cvec.t

(** [structured_dft] packages {!fft}/{!ifft} for injection into
    [Linalg.Structured] (which sits below this library and defaults to
    a naive transform). *)
val structured_dft : Structured.dft

(** [is_power_of_two n] is true when [n] is a positive power of two. *)
val is_power_of_two : int -> bool

(** [next_power_of_two n] is the smallest power of two [>= n]. *)
val next_power_of_two : int -> int
