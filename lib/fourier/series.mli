(** Real Fourier series on uniform periodic grids.

    A real signal sampled at [t_j = j T / n] ([j = 0..n-1], [n = 2M+1]
    odd) is represented by centered complex coefficients [c_i],
    [i = -M..M], stored at array index [i + M], such that

    [x(t) = sum_i c_i e^{2 pi i I t / T}].

    These grids and the spectral differentiation matrix are the
    discrete backbone of the WaMPDE t1 axis (the truncated series of
    the paper's eq. (19)). *)

open Linalg

(** [coeffs x] computes centered coefficients from odd-length samples.
    Raises [Invalid_argument] on even length. *)
val coeffs : Vec.t -> Cx.Cvec.t

(** [harmonic coeffs i] is [c_i] for [i] in [-M..M]. *)
val harmonic : Cx.Cvec.t -> int -> Cx.c

(** [eval coeffs ~period t] evaluates the series at time [t] (real
    part; the imaginary part is O(eps) for coefficients of a real
    signal). *)
val eval : Cx.Cvec.t -> period:float -> float -> float

(** [synthesize coeffs n] samples the series on the [n]-point uniform
    grid of one period. *)
val synthesize : Cx.Cvec.t -> int -> Vec.t

(** [derivative coeffs ~period] are the coefficients of [dx/dt]. *)
val derivative : Cx.Cvec.t -> period:float -> Cx.Cvec.t

(** [interp x ~period t] trigonometric interpolation of odd-length
    samples [x] at arbitrary [t]. *)
val interp : Vec.t -> period:float -> float -> float

(** [resample x n] re-samples odd-length samples onto an [n]-point
    uniform grid by trigonometric interpolation. *)
val resample : Vec.t -> int -> Vec.t

(** [diff_matrix n] is the [n x n] spectral differentiation matrix for
    period-1 signals on the uniform grid ([n] odd): [(diff_matrix n) x]
    is the exact derivative of the degree-M trigonometric interpolant
    at the grid points. *)
val diff_matrix : int -> Mat.t

(** [diff_matrix_fd ~order n] is a central-finite-difference periodic
    differentiation matrix for period-1 grids; [order] is 2 or 4. *)
val diff_matrix_fd : order:int -> int -> Mat.t

(** [truncation_error x ~keep] is the relative l2 error committed by
    dropping all harmonics with [|i| > keep] from the samples [x]. *)
val truncation_error : Vec.t -> keep:int -> float

(** [harmonics_needed ~tol x] is the smallest [keep] such that
    [truncation_error x ~keep <= tol] (at most [M]).  Computed in
    O(M) from a suffix sum of per-band spectral energy (one FFT plus
    one pass), not by re-evaluating {!truncation_error} per candidate
    [keep]. *)
val harmonics_needed : tol:float -> Vec.t -> int

(** Spectral-resolution summary of one odd-length grid: [needed] is
    {!harmonics_needed}, [available] is [M = n/2], and [tail] is the
    relative l2 energy carried by the outermost [band] harmonics
    ([|i| > M - band]) — the grid's own estimate of what a larger [M]
    would still capture.  [band] defaults to [max 1 (M/3)]. *)
type resolution = { needed : int; available : int; tail : float }

val resolution : tol:float -> ?band:int -> Vec.t -> resolution

(** Like {!resolution}, from precomputed centered coefficients. *)
val resolution_of_coeffs : tol:float -> ?band:int -> Cx.Cvec.t -> resolution

(** [grid_resolution ~tol states] is the worst-case {!resolution} over
    the components of a t1 collocation grid: [states.(i)] is the state
    vector at the [i]-th of [n1] (odd) uniform t1 points, and each
    component's periodic sample [states.(0..n1-1).(j)] is analysed
    separately, taking [needed] and [tail] as maxima over components.
    Raises [Invalid_argument] on an empty or even-length grid. *)
val grid_resolution : tol:float -> ?band:int -> Vec.t array -> resolution

(** [total_harmonic_distortion coeffs] is the THD relative to the
    fundamental: the rms of harmonics 2 and above over the magnitude of
    harmonic 1. *)
val total_harmonic_distortion : Cx.Cvec.t -> float
