open Linalg

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let next_power_of_two n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(* In-place iterative radix-2 Cooley-Tukey on separate re/im arrays.
   [sign] is -1 for the forward transform, +1 for the inverse. *)
let radix2_inplace re im sign =
  let n = Array.length re in
  (* bit reversal permutation *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tr = re.(i) in
      re.(i) <- re.(!j);
      re.(!j) <- tr;
      let ti = im.(i) in
      im.(i) <- im.(!j);
      im.(!j) <- ti
    end;
    let rec carry m =
      if m land !j <> 0 then begin
        j := !j lxor m;
        carry (m lsr 1)
      end
      else j := !j lor m
    in
    carry (n lsr 1)
  done;
  (* butterflies *)
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let theta = float_of_int sign *. 2. *. Float.pi /. float_of_int !len in
    let wr = cos theta and wi = sin theta in
    let start = ref 0 in
    while !start < n do
      let cur_r = ref 1. and cur_i = ref 0. in
      for k = 0 to half - 1 do
        let a = !start + k and b = !start + k + half in
        let tr = (re.(b) *. !cur_r) -. (im.(b) *. !cur_i) in
        let ti = (re.(b) *. !cur_i) +. (im.(b) *. !cur_r) in
        re.(b) <- re.(a) -. tr;
        im.(b) <- im.(a) -. ti;
        re.(a) <- re.(a) +. tr;
        im.(a) <- im.(a) +. ti;
        let nr = (!cur_r *. wr) -. (!cur_i *. wi) in
        cur_i := (!cur_r *. wi) +. (!cur_i *. wr);
        cur_r := nr
      done;
      start := !start + !len
    done;
    len := !len * 2
  done

let of_parts re im = Array.init (Array.length re) (fun i -> Cx.cx re.(i) im.(i))

let to_parts (x : Cx.Cvec.t) =
  (Array.map Cx.re x, Array.map Cx.im x)

let radix2 x sign =
  let re, im = to_parts x in
  radix2_inplace re im sign;
  of_parts re im

(* Bluestein's chirp-z transform: expresses an arbitrary-size DFT as a
   convolution, evaluated with power-of-two FFTs.  The chirp weights
   and the transformed convolution kernel depend only on (n, sign), so
   they are cached: repeated transforms of one size (the common case in
   the block-preconditioner hot path) cost two power-of-two FFTs
   instead of three plus trigonometric setup. *)
type bluestein_plan = {
  bp_m : int;
  bp_chirp_re : float array;
  bp_chirp_im : float array;
  bp_bre : float array;  (* forward FFT of the chirp kernel *)
  bp_bim : float array;
}

(* The plan cache is shared across domains (pool workers batch
   same-size transforms), so it must not be a bare Hashtbl: a resize
   racing a lookup corrupts the table.  Lookups read an immutable map
   through an [Atomic] (no lock on the hit path); insertion is
   mutex-guarded with a second lookup under the lock, so concurrent
   first uses of one size build the plan at most twice and publish
   exactly one. *)
module Plan_key = struct
  type t = int * int

  let compare = compare
end

module Plan_map = Map.Make (Plan_key)

let bluestein_plans : bluestein_plan Plan_map.t Atomic.t = Atomic.make Plan_map.empty
let bluestein_plans_mutex = Mutex.create ()

let build_bluestein_plan n sign =
  let m = next_power_of_two ((2 * n) - 1) in
  (* chirp weights w_j = e^{sign * i pi j^2 / n } *)
  let chirp_re = Array.make n 0. and chirp_im = Array.make n 0. in
  for j = 0 to n - 1 do
    (* j^2 mod 2n avoids precision loss for large j *)
    let jsq = j * j mod (2 * n) in
    let theta = float_of_int sign *. Float.pi *. float_of_int jsq /. float_of_int n in
    chirp_re.(j) <- cos theta;
    chirp_im.(j) <- sin theta
  done;
  let bre = Array.make m 0. and bim = Array.make m 0. in
  bre.(0) <- chirp_re.(0);
  bim.(0) <- -.chirp_im.(0);
  for j = 1 to n - 1 do
    bre.(j) <- chirp_re.(j);
    bim.(j) <- -.chirp_im.(j);
    bre.(m - j) <- chirp_re.(j);
    bim.(m - j) <- -.chirp_im.(j)
  done;
  radix2_inplace bre bim (-1);
  { bp_m = m; bp_chirp_re = chirp_re; bp_chirp_im = chirp_im; bp_bre = bre; bp_bim = bim }

let bluestein_plan n sign =
  match Plan_map.find_opt (n, sign) (Atomic.get bluestein_plans) with
  | Some p -> p
  | None ->
      Mutex.lock bluestein_plans_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock bluestein_plans_mutex)
        (fun () ->
          match Plan_map.find_opt (n, sign) (Atomic.get bluestein_plans) with
          | Some p -> p
          | None ->
              let p = build_bluestein_plan n sign in
              Atomic.set bluestein_plans (Plan_map.add (n, sign) p (Atomic.get bluestein_plans));
              p)

(* Per-domain Bluestein convolution scratch, keyed by the padded size
   [m]: batched same-size transforms (the preconditioner hot path)
   reuse it instead of allocating two length-[m] arrays per call. *)
let bluestein_scratch_key : (int, float array * float array) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let bluestein_scratch m =
  let tbl = Domain.DLS.get bluestein_scratch_key in
  let are, aim =
    match Hashtbl.find_opt tbl m with
    | Some ws -> ws
    | None ->
        let ws = (Array.make m 0., Array.make m 0.) in
        Hashtbl.replace tbl m ws;
        ws
  in
  Array.fill are 0 m 0.;
  Array.fill aim 0 m 0.;
  (are, aim)

(* In-place Bluestein on a re/im pair. *)
let bluestein_pair_inplace re im sign =
  let n = Array.length re in
  let { bp_m = m; bp_chirp_re = chirp_re; bp_chirp_im = chirp_im; bp_bre = bre; bp_bim = bim } =
    bluestein_plan n sign
  in
  let are, aim = bluestein_scratch m in
  for j = 0 to n - 1 do
    let xr = re.(j) and xi = im.(j) in
    are.(j) <- (xr *. chirp_re.(j)) -. (xi *. chirp_im.(j));
    aim.(j) <- (xr *. chirp_im.(j)) +. (xi *. chirp_re.(j))
  done;
  radix2_inplace are aim (-1);
  (* pointwise product *)
  for j = 0 to m - 1 do
    let pr = (are.(j) *. bre.(j)) -. (aim.(j) *. bim.(j)) in
    let pi = (are.(j) *. bim.(j)) +. (aim.(j) *. bre.(j)) in
    are.(j) <- pr;
    aim.(j) <- pi
  done;
  radix2_inplace are aim 1;
  let scale = 1. /. float_of_int m in
  for k = 0 to n - 1 do
    let cr = are.(k) *. scale and ci = aim.(k) *. scale in
    re.(k) <- (cr *. chirp_re.(k)) -. (ci *. chirp_im.(k));
    im.(k) <- (cr *. chirp_im.(k)) +. (ci *. chirp_re.(k))
  done

let bluestein x sign =
  let re, im = to_parts x in
  bluestein_pair_inplace re im sign;
  of_parts re im

let transform_pair_inplace ~sign re im =
  let n = Array.length re in
  if Array.length im <> n then invalid_arg "Fft.transform_pair_inplace: length mismatch";
  if n <= 1 then ()
  else if is_power_of_two n then radix2_inplace re im sign
  else bluestein_pair_inplace re im sign

let fft_pair_inplace re im = transform_pair_inplace ~sign:(-1) re im

let ifft_pair_inplace re im =
  let n = Array.length re in
  if n > 0 then begin
    transform_pair_inplace ~sign:1 re im;
    let s = 1. /. float_of_int n in
    for k = 0 to n - 1 do
      re.(k) <- s *. re.(k);
      im.(k) <- s *. im.(k)
    done
  end

let transform x sign =
  let n = Array.length x in
  if n <= 1 then Array.copy x
  else if is_power_of_two n then radix2 x sign
  else bluestein x sign

let fft x = transform x (-1)

let ifft x =
  let n = Array.length x in
  if n = 0 then [||]
  else begin
    let y = transform x 1 in
    let s = 1. /. float_of_int n in
    Array.map (fun z -> Cx.scale s z) y
  end

let fft_real x = fft (Cx.Cvec.of_real x)

let dft x =
  let n = Array.length x in
  Array.init n (fun k ->
      let s = ref Complex.zero in
      for j = 0 to n - 1 do
        let w = Cx.cis (-2. *. Float.pi *. float_of_int (j * k mod n) /. float_of_int n) in
        s := Complex.add !s (Complex.mul x.(j) w)
      done;
      !s)

let structured_dft =
  {
    Structured.fwd = fft;
    inv = ifft;
    fwd_pair = Some fft_pair_inplace;
    inv_pair = Some ifft_pair_inplace;
  }
