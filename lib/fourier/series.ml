open Linalg

let check_odd name n =
  if n < 1 || n mod 2 = 0 then
    invalid_arg (Printf.sprintf "Series.%s: length %d must be odd" name n)

let coeffs x =
  let n = Array.length x in
  check_odd "coeffs" n;
  let m = n / 2 in
  let spectrum = Fft.fft_real x in
  let scale = 1. /. float_of_int n in
  (* FFT bin k holds harmonic k for k <= M and harmonic k - n for k > M *)
  Array.init n (fun idx ->
      let i = idx - m in
      let k = if i >= 0 then i else i + n in
      Cx.scale scale spectrum.(k))

let harmonic c i =
  let n = Array.length c in
  let m = n / 2 in
  if i < -m || i > m then invalid_arg "Series.harmonic: index out of range";
  c.(i + m)

let eval c ~period t =
  let n = Array.length c in
  let m = n / 2 in
  let s = ref 0. in
  for idx = 0 to n - 1 do
    let i = idx - m in
    let theta = 2. *. Float.pi *. float_of_int i *. t /. period in
    s := !s +. ((Cx.re c.(idx) *. cos theta) -. (Cx.im c.(idx) *. sin theta))
  done;
  !s

let synthesize c n =
  Vec.init n (fun j -> eval c ~period:1. (float_of_int j /. float_of_int n))

let derivative c ~period =
  let n = Array.length c in
  let m = n / 2 in
  Array.init n (fun idx ->
      let i = idx - m in
      let w = 2. *. Float.pi *. float_of_int i /. period in
      Complex.mul (Cx.cx 0. w) c.(idx))

let interp x ~period t = eval (coeffs x) ~period t

let resample x n =
  let c = coeffs x in
  Vec.init n (fun j -> eval c ~period:1. (float_of_int j /. float_of_int n))

(* Trefethen's negative-sum-trick-free formula for odd n, scaled from
   period 2 pi to period 1: D_jk = pi (-1)^(j-k) / sin(pi (j-k) / n). *)
let diff_matrix n =
  check_odd "diff_matrix" n;
  Mat.init n n (fun j k ->
      if j = k then 0.
      else begin
        let d = j - k in
        let sign = if (d land 1) = 0 then 1. else -1. in
        Float.pi *. sign /. sin (Float.pi *. float_of_int d /. float_of_int n)
      end)

let diff_matrix_fd ~order n =
  if n < 5 then invalid_arg "Series.diff_matrix_fd: n < 5";
  let h = 1. /. float_of_int n in
  let wrap i = ((i mod n) + n) mod n in
  match order with
  | 2 ->
    Mat.init n n (fun j k ->
        if k = wrap (j + 1) then 1. /. (2. *. h)
        else if k = wrap (j - 1) then -1. /. (2. *. h)
        else 0.)
  | 4 ->
    Mat.init n n (fun j k ->
        if k = wrap (j + 1) then 8. /. (12. *. h)
        else if k = wrap (j - 1) then -8. /. (12. *. h)
        else if k = wrap (j + 2) then -1. /. (12. *. h)
        else if k = wrap (j - 2) then 1. /. (12. *. h)
        else 0.)
  | o -> invalid_arg (Printf.sprintf "Series.diff_matrix_fd: order %d not in {2, 4}" o)

let truncation_error x ~keep =
  let c = coeffs x in
  let n = Array.length c in
  let m = n / 2 in
  let total = ref 0. and dropped = ref 0. in
  for idx = 0 to n - 1 do
    let i = idx - m in
    let p = Complex.norm2 c.(idx) in
    total := !total +. p;
    if abs i > keep then dropped := !dropped +. p
  done;
  if !total = 0. then 0. else sqrt (!dropped /. !total)

type resolution = { needed : int; available : int; tail : float }

(* Suffix sums of per-band spectral energy make every truncation query
   O(1): suffix.(a) = sum of |c_i|^2 over |i| >= a, so the relative
   error of keeping harmonics |i| <= keep is
   sqrt (suffix.(keep + 1) / suffix.(0)). *)
let energy_suffix (c : Cx.Cvec.t) =
  let n = Array.length c in
  let m = n / 2 in
  let band = Array.make (m + 1) 0. in
  for idx = 0 to n - 1 do
    let a = abs (idx - m) in
    band.(a) <- band.(a) +. Complex.norm2 c.(idx)
  done;
  let suffix = Array.make (m + 2) 0. in
  for a = m downto 0 do
    suffix.(a) <- suffix.(a + 1) +. band.(a)
  done;
  suffix

let resolution_of_coeffs ~tol ?band (c : Cx.Cvec.t) =
  let n = Array.length c in
  check_odd "resolution_of_coeffs" n;
  let m = n / 2 in
  let suffix = energy_suffix c in
  let total = suffix.(0) in
  let rel a = if total = 0. then 0. else sqrt (suffix.(a) /. total) in
  let needed =
    let keep = ref 0 in
    while !keep < m && rel (!keep + 1) > tol do
      incr keep
    done;
    !keep
  in
  (* tail = relative energy in the outermost [band] harmonics: the
     grid's own estimate of what a larger M would still capture *)
  let band = match band with Some b -> max 1 (min m b) | None -> max 1 (m / 3) in
  { needed; available = m; tail = (if m = 0 then 0. else rel (m - band + 1)) }

let resolution ~tol ?band x = resolution_of_coeffs ~tol ?band (coeffs x)

let harmonics_needed ~tol x =
  let n = Array.length x in
  check_odd "harmonics_needed" n;
  (resolution_of_coeffs ~tol (coeffs x)).needed

let grid_resolution ~tol ?band (states : Vec.t array) =
  if Array.length states = 0 then invalid_arg "Series.grid_resolution: empty grid";
  let n1 = Array.length states in
  check_odd "grid_resolution" n1;
  let n = Array.length states.(0) in
  (* worst case over components, with needed and tail taken
     independently: the component that exhausts the harmonic budget is
     not necessarily the one with the fattest tail *)
  let needed = ref 0 and tail = ref 0. in
  let sample = Array.make n1 0. in
  for j = 0 to n - 1 do
    for i = 0 to n1 - 1 do
      sample.(i) <- states.(i).(j)
    done;
    let r = resolution ~tol ?band sample in
    if r.needed > !needed then needed := r.needed;
    if r.tail > !tail then tail := r.tail
  done;
  { needed = !needed; available = n1 / 2; tail = !tail }

let total_harmonic_distortion c =
  let n = Array.length c in
  let m = n / 2 in
  if m < 1 then 0.
  else begin
    let fund = Complex.norm (harmonic c 1) in
    if fund = 0. then Float.infinity
    else begin
      let s = ref 0. in
      for idx = 0 to n - 1 do
        let i = idx - m in
        if i >= 2 then s := !s +. Complex.norm2 c.(idx)
      done;
      sqrt !s /. fund
    end
  end
