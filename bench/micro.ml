(* Bechamel microbenchmarks for the linear-algebra kernels behind the
   matrix-free Newton-Krylov path: dense LU factorization (what the
   Krylov path avoids), the structured collocation matvec, and one
   application of the FFT-diagonalized block preconditioner.

   Run with `dune exec bench/micro.exe`; built by `dune build @bench`. *)

open Linalg

let sizes = [ 33; 65; 101 ]
let n = 4 (* states of the VCO DAE *)

(* envelope-step-like operator with synthetic (diagonally dominant)
   blocks: representative sparsity-free n x n blocks, circulant D *)
let make_system n1 =
  let d = Fourier.Series.diff_matrix n1 in
  let c_blocks =
    Array.init n1 (fun k ->
        Mat.init n n (fun i j ->
            (if i = j then 2. else 0.) +. (0.3 *. sin (float_of_int ((k * 5) + i + (2 * j))))))
  in
  let b_blocks =
    Array.init n1 (fun k ->
        Mat.init n n (fun i j ->
            (if i = j then 5. else 0.) +. (0.4 *. cos (float_of_int ((k * 3) + (2 * i) + j)))))
  in
  Structured.make_op ~alpha:0.8 ~d ~c_blocks ~b_blocks

let dense_of n1 =
  let nd = n1 * n in
  Mat.init nd nd (fun i j -> (if i = j then 8. else 0.) +. sin (float_of_int ((i * 7) + j)))

let tests =
  let open Bechamel in
  List.concat_map
    (fun n1 ->
      let op = make_system n1 in
      let nd = Structured.dim op in
      let dense = dense_of n1 in
      let pc = Structured.make_precond ~dft:Fourier.Fft.structured_dft op in
      let v = Array.init nd (fun i -> sin (float_of_int i)) in
      let out = Array.make nd 0. in
      [
        Test.make
          ~name:(Printf.sprintf "lu_factor_%d" nd)
          (Staged.stage (fun () -> Lu.factor dense));
        Test.make
          ~name:(Printf.sprintf "structured_matvec_%d" nd)
          (Staged.stage (fun () -> Structured.apply_into op v out));
        Test.make
          ~name:(Printf.sprintf "precond_apply_%d" nd)
          (Staged.stage (fun () -> Structured.precond_apply pc v));
      ])
    sizes

let () =
  let open Bechamel in
  let open Toolkit in
  Printf.printf "== linalg kernel microbenchmarks (ns/run) ==\n%!";
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) () in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ t ] -> Printf.printf "  %-24s %12.0f ns/run\n%!" name t
          | _ -> Printf.printf "  %-24s (no estimate)\n%!" name)
        results)
    tests
