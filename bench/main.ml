(* Benchmark harness: regenerates the data behind every figure of the
   paper (there are no numbered tables; Figs. 1-12 plus the headline
   speedup claim are the evaluation), and times the computational
   kernels with Bechamel.

   Usage:
     dune exec bench/main.exe                 -- all experiments + timings
     dune exec bench/main.exe -- --only fig7  -- one experiment
     dune exec bench/main.exe -- --csv        -- emit full series as CSV
     dune exec bench/main.exe -- --list       -- list experiment ids
     dune exec bench/main.exe -- --smoke      -- reduced problem sizes (CI)
     dune exec bench/main.exe -- --check      -- exit 1 if krylov slower than dense
     dune exec bench/main.exe -- --jobs 4     -- domain-pool parallelism (adds the
                                                 strong-scaling rows to krylov/robust)

   See EXPERIMENTS.md for the paper-vs-measured record. *)

module Obs = Wampde_obs

let two_pi = 2. *. Float.pi

let csv = ref false
let json = ref false
let smoke = ref false
let check = ref false
let only : string option ref = ref None

(* ------------------------------------------------------------------ *)
(* Shared setups, computed lazily so `--only figN` stays fast.         *)
(* ------------------------------------------------------------------ *)

let n1 = 25

let unforced_orbit damping force0 =
  let frozen = Circuit.Vco.default_params ~damping ~force0 ~control:(fun _ -> 1.5) () in
  Steady.Oscillator.find (Circuit.Vco.build frozen) ~n1 ~period_hint:(1. /. 0.75)
    (Circuit.Vco.initial_state frozen)

let vco_a = lazy (Circuit.Vco.vco_a ())
let vco_b = lazy (Circuit.Vco.vco_b ())
let orbit_a = lazy (unforced_orbit 0.0785 4.3e-3)
let orbit_b = lazy (unforced_orbit 1.57 4.0e-3)
let options = lazy (Wampde.Envelope.default_options ~n1 ())

let envelope_a =
  lazy
    (Wampde.Envelope.simulate
       (Circuit.Vco.build (Lazy.force vco_a))
       ~options:(Lazy.force options) ~t2_end:60. ~h2:0.4 ~init:(Lazy.force orbit_a))

let b_window = 300.

let envelope_b =
  lazy
    (Wampde.Envelope.simulate
       (Circuit.Vco.build (Lazy.force vco_b))
       ~options:(Lazy.force options) ~t2_end:b_window ~h2:2. ~init:(Lazy.force orbit_b))

let transient_b pts_per_cycle =
  let dae = Circuit.Vco.build (Lazy.force vco_b) in
  let orbit = Lazy.force orbit_b in
  let x0 = Array.init dae.Dae.dim (fun i -> orbit.Steady.Oscillator.grid.(0).(i)) in
  Transient.integrate dae ~method_:Transient.Trapezoidal ~t0:0. ~t1:b_window
    ~h:(1.333 /. float_of_int pts_per_cycle)
    x0

let minmax a = (Array.fold_left Float.min infinity a, Array.fold_left Float.max neg_infinity a)

let series2 name xs ys =
  if !csv then Array.iteri (fun i x -> Printf.printf "%s,%g,%g\n" name x ys.(i)) xs

(* ------------------------------------------------------------------ *)
(* Experiments                                                         *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  (* univariate sampling cost of the 2-tone quasiperiodic signal, eq. (1) *)
  let t1p = 0.02 and t2p = 1.0 and pts_per_sine = 15 in
  let total = pts_per_sine * int_of_float (t2p /. t1p) in
  Printf.printf "fig1 | 2-tone signal T1=%.2fs T2=%.0fs: %d univariate samples (paper: 750)\n"
    t1p t2p total;
  let y t = sin (two_pi *. t /. t1p) *. sin (two_pi *. t /. t2p) in
  if !csv then
    for i = 0 to total - 1 do
      let t = t2p *. float_of_int i /. float_of_int total in
      Printf.printf "fig1,%g,%g\n" t (y t)
    done;
  (* sampling cost grows linearly with rate separation *)
  List.iter
    (fun sep ->
      Printf.printf "fig1 |   separation %5.0fx -> %d univariate samples\n" sep
        (int_of_float (float_of_int pts_per_sine *. sep)))
    [ 50.; 100.; 1000. ]

let fig2 () =
  let t1p = 0.02 and t2p = 1.0 in
  let b =
    Sigproc.Bivariate.sample
      ~f:(fun t1 t2 -> sin (two_pi *. t1 /. t1p) *. sin (two_pi *. t2 /. t2p))
      ~p1:t1p ~p2:t2p ~n1:15 ~n2:15
  in
  let y t = sin (two_pi *. t /. t1p) *. sin (two_pi *. t /. t2p) in
  let worst = ref 0. in
  for k = 0 to 2000 do
    let t = t2p *. float_of_int k /. 2000. in
    worst := Float.max !worst (Float.abs (Sigproc.Bivariate.diagonal b t -. y t))
  done;
  Printf.printf
    "fig2 | bivariate form: %d samples (paper: 225, 3.3x fewer than fig1), recovery err %.3f\n"
    (Sigproc.Bivariate.sample_count b) !worst;
  if !csv then
    Array.iteri
      (fun i row -> Array.iteri (fun j v -> Printf.printf "fig2,%d,%d,%g\n" i j v) row)
      b.Sigproc.Bivariate.grid

let fig3 () =
  let pts = Sigproc.Bivariate.sawtooth_path ~p1:0.02 ~p2:1.0 ~t_max:0.2 200 in
  let inside = Array.for_all (fun (a, b) -> a >= 0. && a <= 0.02 && b >= 0. && b <= 1.) pts in
  Printf.printf "fig3 | sawtooth characteristic path: %d points, all inside [0,T1]x[0,T2]: %b\n"
    (Array.length pts) inside;
  if !csv then Array.iter (fun (a, b) -> Printf.printf "fig3,%g,%g\n" a b) pts

let fm_params = (1.0e6, 2.0e4, 8. *. Float.pi)

let fig4 () =
  let f0, f2, k = fm_params in
  let x t = cos ((two_pi *. f0 *. t) +. (k *. cos (two_pi *. f2 *. t))) in
  let inst t = f0 -. (k *. f2 *. sin (two_pi *. f2 *. t)) in
  let fmin = f0 -. (k *. f2) and fmax = f0 +. (k *. f2) in
  Printf.printf
    "fig4 | FM signal f0=1MHz f2=20kHz k=8pi: instantaneous frequency %.3g..%.3g Hz\n" fmin
    fmax;
  if !csv then
    for i = 0 to 2000 do
      let t = 7.0e-5 *. float_of_int i /. 2000. in
      Printf.printf "fig4,%g,%g,%g\n" t (x t) (inst t)
    done

let fig5 () =
  let f0, f2, _ = fm_params in
  Printf.printf
    "fig5 | unwarped bivariate FM (eq 5): slow-axis harmonics needed vs modulation index k\n";
  List.iter
    (fun k_over_pi ->
      let k = Float.pi *. k_over_pi in
      let n2 = 513 in
      let cross =
        Array.init n2 (fun j ->
            cos (k *. cos (two_pi *. float_of_int j /. float_of_int n2)))
      in
      let needed = Fourier.Series.harmonics_needed ~tol:1e-3 cross in
      Printf.printf "fig5 |   k = %4.0f pi -> %3d harmonics (theory ~k/pi cycles = %.0f)\n"
        k_over_pi needed (k /. Float.pi))
    [ 2.; 4.; 8.; 16.; 32. ];
  let u =
    Sigproc.Bivariate.sample
      ~f:(fun t1 t2 ->
        cos ((two_pi *. f0 *. t1) +. (8. *. Float.pi *. cos (two_pi *. f2 *. t2))))
      ~p1:(1. /. f0) ~p2:(1. /. f2) ~n1:15 ~n2:25
  in
  Printf.printf "fig5 | undulation count on 15x25 grid: %d (not compact)\n"
    (Sigproc.Bivariate.undulation_count u)

let fig6 () =
  let _, f2, _ = fm_params in
  Printf.printf "fig6 | warped bivariate FM (eqs 6-7): harmonics needed vs k\n";
  List.iter
    (fun k_over_pi ->
      (* the warped form cos(2 pi t1) is independent of t2 and of k *)
      let n2 = 513 in
      let cross = Array.init n2 (fun _ -> cos (two_pi *. 0.3)) in
      let needed = Fourier.Series.harmonics_needed ~tol:1e-3 cross in
      Printf.printf "fig6 |   k = %4.0f pi -> %3d harmonics (constant: compact)\n" k_over_pi
        needed)
    [ 2.; 4.; 8.; 16.; 32. ];
  let w =
    Sigproc.Bivariate.sample
      ~f:(fun t1 _ -> cos (two_pi *. t1))
      ~p1:1. ~p2:(1. /. f2) ~n1:15 ~n2:25
  in
  Printf.printf "fig6 | undulation count on 15x25 grid: %d (compact)\n"
    (Sigproc.Bivariate.undulation_count w)

let fig7 () =
  let res = Lazy.force envelope_a in
  let om = res.Wampde.Envelope.omega in
  let lo, hi = minmax om in
  Printf.printf
    "fig7 | VCO-A local frequency: %.4f..%.4f MHz, modulation factor %.2f (paper: ~3x)\n" lo hi
    (hi /. lo);
  series2 "fig7" res.Wampde.Envelope.t2 om

let fig8 () =
  let res = Lazy.force envelope_a in
  let amp = Wampde.Envelope.amplitude_track res ~component:Circuit.Vco.idx_voltage in
  let lo, hi = minmax amp in
  (* shape change: total harmonic distortion of the t1 waveform per slice *)
  let thd_lo = ref infinity and thd_hi = ref neg_infinity in
  Array.iteri
    (fun idx _ ->
      let s = Wampde.Envelope.slice res ~index:idx ~component:Circuit.Vco.idx_voltage in
      let thd = Fourier.Series.total_harmonic_distortion (Fourier.Series.coeffs s) in
      thd_lo := Float.min !thd_lo thd;
      thd_hi := Float.max !thd_hi thd)
    res.Wampde.Envelope.slices;
  Printf.printf
    "fig8 | VCO-A bivariate voltage: amplitude %.3f..%.3f V, shape THD %.3f..%.3f (both modulate)\n"
    lo hi !thd_lo !thd_hi;
  if !csv then
    Array.iteri
      (fun idx t2 ->
        if idx mod 5 = 0 then begin
          let s = Wampde.Envelope.slice res ~index:idx ~component:Circuit.Vco.idx_voltage in
          Array.iteri
            (fun j v ->
              Printf.printf "fig8,%g,%g,%g\n" (float_of_int j /. float_of_int n1) t2 v)
            s
        end)
      res.Wampde.Envelope.t2

let fig9 () =
  let res = Lazy.force envelope_a in
  let dae = Circuit.Vco.build (Lazy.force vco_a) in
  let orbit = Lazy.force orbit_a in
  let x0 = Array.init dae.Dae.dim (fun i -> orbit.Steady.Oscillator.grid.(0).(i)) in
  let traj =
    Transient.integrate dae ~method_:Transient.Trapezoidal ~t0:0. ~t1:60. ~h:(1.333 /. 1000.)
      x0
  in
  let worst = ref 0. in
  let amp = ref 0. in
  for k = 0 to 3000 do
    let t = 60. *. float_of_int k /. 3000. in
    let vw = Wampde.Envelope.eval_waveform res ~component:Circuit.Vco.idx_voltage t in
    let vt = Transient.interpolate traj Circuit.Vco.idx_voltage t in
    if !csv then Printf.printf "fig9,%g,%g,%g\n" t vw vt;
    worst := Float.max !worst (Float.abs (vw -. vt));
    amp := Float.max !amp (Float.abs vt)
  done;
  Printf.printf
    "fig9 | VCO-A WaMPDE vs transient: max deviation %.4f V on +-%.2f V waveform over 45 cycles\n"
    !worst !amp;
  Printf.printf "fig9 | (paper: 'so close that it is difficult to tell the two apart')\n"

let fig10 () =
  let res = Lazy.force envelope_b in
  let om = res.Wampde.Envelope.omega in
  let lo, hi = minmax om in
  Printf.printf
    "fig10 | VCO-B local frequency over %.0f us: %.4f..%.4f MHz (smaller swing; settling visible)\n"
    b_window lo hi;
  series2 "fig10" res.Wampde.Envelope.t2 om

let fig11 () =
  let res = Lazy.force envelope_b in
  let amp = Wampde.Envelope.amplitude_track res ~component:Circuit.Vco.idx_voltage in
  let lo, hi = minmax amp in
  Printf.printf
    "fig11 | VCO-B bivariate voltage amplitude: %.4f..%.4f V (varies %.2f%%; paper: 'very little')\n"
    lo hi
    ((hi -. lo) /. hi *. 100.);
  series2 "fig11" res.Wampde.Envelope.t2 amp

let fig12 () =
  let res = Lazy.force envelope_b in
  let times = Array.init 20_001 (fun i -> b_window *. float_of_int i /. 20_000.) in
  let v_wampde =
    Array.map
      (fun t -> Wampde.Envelope.eval_waveform res ~component:Circuit.Vco.idx_voltage t)
      times
  in
  Printf.printf "fig12 | VCO-B phase error of transient vs WaMPDE over %.0f us:\n" b_window;
  List.iter
    (fun pts ->
      let traj = transient_b pts in
      let v_tr =
        Array.map (fun t -> Transient.interpolate traj Circuit.Vco.idx_voltage t) times
      in
      let tseries, eseries =
        Sigproc.Zero_crossing.phase_error ~reference:(times, v_wampde) ~test:(times, v_tr)
      in
      let pe = Linalg.Vec.norm_inf eseries in
      Printf.printf "fig12 |   %4d pts/cycle -> max phase error %.3f cycles\n" pts pe;
      if !csv then
        Array.iteri (fun i t -> Printf.printf "fig12-%d,%g,%g\n" pts t eseries.(i)) tseries)
    [ 50; 100; 1000 ];
  Printf.printf
    "fig12 | (paper: 50 pts/cycle builds up error, 100 reduces it, ~1000 needed to match)\n"

let speedup () =
  (* error-matched runtime comparison on the VCO-B window: the WaMPDE at
     h2 = 5 us accumulates 0.0024 cycles of phase error over the window
     (vs an h2 = 2 reference), on par with the transient at 1000
     pts/cycle (0.001 cycles, fig12) -- both resolve the phase to well
     under 1% of a cycle, so the runtimes are directly comparable. *)
  let h2 = 5. in
  let dae = Circuit.Vco.build (Lazy.force vco_b) in
  let orbit = Lazy.force orbit_b in
  let time f =
    let t0 = Sys.time () in
    let r = f () in
    (r, Sys.time () -. t0)
  in
  let (_ : Wampde.Envelope.result), t_wampde =
    time (fun () ->
        Wampde.Envelope.simulate dae ~options:(Lazy.force options) ~t2_end:b_window ~h2
          ~init:orbit)
  in
  let traj, t_transient = time (fun () -> transient_b 1000) in
  let steps_wampde = int_of_float (b_window /. h2) in
  let steps_transient = Transient.steps traj in
  Printf.printf "speedup | VCO-B window %.0f us, error-matched (phase to <0.01 cycle):\n"
    b_window;
  Printf.printf "speedup |   WaMPDE envelope (h2 = %.0f us): %5d slow steps, %7.3f s\n" h2
    steps_wampde t_wampde;
  Printf.printf "speedup |   transient (1000 pts/cycle): %d steps, %7.3f s\n" steps_transient
    t_transient;
  Printf.printf
    "speedup |   wall-clock ratio %.0fx (paper: 'two orders of magnitude'); step ratio %.0fx\n"
    (t_transient /. t_wampde)
    (float_of_int steps_transient /. float_of_int steps_wampde);
  Printf.printf
    "speedup |   (the paper's full 3 ms run scales both linearly: same ratio)\n"

let mpdefm () =
  (* the unwarped MPDE handles AM but not FM *)
  let p1 = 0.01 in
  let a t2 = 1. +. (0.5 *. sin (0.6 *. t2)) in
  let sys =
    {
      Mpde.dae = Dae.of_ode ~dim:1 ~rhs:(fun ~t:_ x -> [| -.x.(0) |]) ();
      p1;
      b_fast = (fun ~t1 ~t2 -> [| -.(a t2) *. sin (two_pi *. t1 /. p1) |]);
    }
  in
  let init = Mpde.periodic_initial sys ~n1:15 ~guess:(Array.init 15 (fun _ -> [| 0. |])) in
  let res = Mpde.simulate sys ~n1:15 ~t2_end:5. ~h2:0.05 ~init in
  let full =
    Dae.of_ode ~dim:1 ~rhs:(fun ~t x -> [| -.x.(0) +. (a t *. sin (two_pi *. t /. p1)) |]) ()
  in
  let x0 = [| Mpde.eval_bivariate res ~component:0 ~t1:0. ~t2:0. |] in
  let traj =
    Transient.integrate full ~method_:Transient.Trapezoidal ~t0:0. ~t1:5. ~h:(p1 /. 100.) x0
  in
  let worst = ref 0. in
  for k = 0 to 500 do
    let t = 5. *. float_of_int k /. 500. in
    worst :=
      Float.max !worst
        (Float.abs (Mpde.eval_waveform res ~component:0 t -. Transient.interpolate traj 0 t))
  done;
  Printf.printf "mpdefm | MPDE on AM two-rate problem: max error vs transient %.4f (works)\n"
    !worst;
  (* FM: harmonics needed along t2 grows ~k for the unwarped form *)
  let needed k =
    let n2 = 513 in
    let cross =
      Array.init n2 (fun j -> cos (k *. cos (two_pi *. float_of_int j /. float_of_int n2)))
    in
    Fourier.Series.harmonics_needed ~tol:1e-3 cross
  in
  Printf.printf
    "mpdefm | unwarped FM cost grows with modulation index: k=2pi:%d k=8pi:%d k=32pi:%d\n"
    (needed (2. *. Float.pi))
    (needed (8. *. Float.pi))
    (needed (32. *. Float.pi));
  Printf.printf "mpdefm | warped (WaMPDE) cost is constant: 1 harmonic at every k\n"

let lock () =
  (* quasiperiodic WaMPDE: FM-quasiperiodic steady state of VCO-A, plus
     the representational special cases of Section 4.1 *)
  let dae = Circuit.Vco.build (Lazy.force vco_a) in
  let env =
    Wampde.Envelope.simulate dae ~options:(Lazy.force options) ~t2_end:200. ~h2:0.5
      ~init:(Lazy.force orbit_a)
  in
  let guess = Wampde.Quasiperiodic.guess_from_envelope env ~p2:40. ~n2:15 ~t_from:160. in
  let sol =
    Wampde.Quasiperiodic.solve dae ~options:(Lazy.force options) ~p2:40. ~n2:15 ~guess ()
  in
  let lo, hi = minmax sol.Wampde.Quasiperiodic.omega in
  Printf.printf
    "lock | VCO-A FM-quasiperiodic steady state (periodic BCs): omega %.4f..%.4f MHz, mean %.4f\n"
    lo hi
    (Wampde.Quasiperiodic.mean_frequency sol);
  Printf.printf "lock | residual %.2e; also solvable matrix-free (GMRES + block-Jacobi)\n"
    (Wampde.Quasiperiodic.residual_norm dae ~options:(Lazy.force options) sol);
  (* special cases of eq. (24): omega0 = w2 (entrained) and w2/2 (divided) *)
  let w2 = 1. /. 40. in
  let x ~w0 t = cos (two_pi *. w0 *. t) *. (1. +. (0.3 *. cos (two_pi *. w2 *. t))) in
  let periodic ~w0 ~period =
    let err = ref 0. in
    for i = 0 to 100 do
      let t = 2.3 *. float_of_int i in
      err := Float.max !err (Float.abs (x ~w0 t -. x ~w0 (t +. period)))
    done;
    !err < 1e-9
  in
  Printf.printf "lock | eq (24) special cases: omega0 = w2 -> T2-periodic (mode-locked): %b\n"
    (periodic ~w0:w2 ~period:(1. /. w2));
  Printf.printf "lock | omega0 = w2/2 -> 2 T2-periodic (period multiplication): %b\n"
    (periodic ~w0:(w2 /. 2.) ~period:(2. /. w2))

let krylov_bench () =
  (* dense LU vs matrix-free Newton-Krylov (FFT-diagonalized averaged
     block preconditioner) on the envelope collocation solves, as the
     fast-axis grid n1 grows.  The dense path refactors a
     (n1 n + 1)^2 Jacobian; the Krylov path never assembles it. *)
  (* Strong modulation (full control swing at h2 = 2 us steps) is the
     regime the Krylov path is for: the Jacobian changes enough between
     slow steps that the dense path must refactor nearly every step,
     and each factorization is O((n1 n)^3).
     The window stays long even under --smoke (a short window lets the
     dense chord cache amortize one LU over everything, which is not
     the regime being compared); smoke just drops the largest sizes. *)
  let sizes = if !smoke then [ 65; 101 ] else [ 65; 101; 129; 161 ] in
  let t2_end = 60. in
  let h2 = 2. in
  let dae = Circuit.Vco.build (Lazy.force vco_a) in
  Printf.printf
    "krylov | envelope solves, dense LU vs matrix-free GMRES (t2_end = %g us, h2 = %g):\n"
    t2_end h2;
  let last_ratio = ref 0. in
  List.iter
    (fun n1 ->
      let frozen = Circuit.Vco.default_params ~control:(fun _ -> 1.5) () in
      let orbit =
        Steady.Oscillator.find (Circuit.Vco.build frozen) ~n1 ~period_hint:(1. /. 0.75)
          (Circuit.Vco.initial_state frozen)
      in
      let count name = Obs.Metrics.count (Obs.Metrics.counter name) in
      let run solver =
        let lu0 = count "lu.factor" and gm0 = count "gmres.iterations" in
        let t0 = Unix.gettimeofday () in
        let options = Wampde.Envelope.default_options ~n1 ~solver () in
        let res = Wampde.Envelope.simulate dae ~options ~t2_end ~h2 ~init:orbit in
        let wall = Unix.gettimeofday () -. t0 in
        (res, wall, count "lu.factor" - lu0, count "gmres.iterations" - gm0)
      in
      let res_d, t_dense, lu_d, _ = run Linalg.Structured.Dense in
      let res_k, t_krylov, lu_k, gm_k = run Linalg.Structured.Krylov in
      let om_d = res_d.Wampde.Envelope.omega and om_k = res_k.Wampde.Envelope.omega in
      let rel_err = ref 0. in
      Array.iteri
        (fun i om ->
          rel_err := Float.max !rel_err (Float.abs (om_k.(i) -. om) /. Float.abs om))
        om_d;
      let ratio = t_dense /. t_krylov in
      last_ratio := ratio;
      let unknowns = (n1 * dae.Dae.dim) + 1 in
      Printf.printf
        "krylov |   n1 = %3d (%5d unknowns): dense %7.3f s (%d LU), krylov %7.3f s (%d LU, %d gmres iters), speedup %.2fx, omega rel err %.1e\n"
        n1 unknowns t_dense lu_d t_krylov lu_k gm_k ratio !rel_err;
      Obs.Metrics.set (Obs.Metrics.gauge (Printf.sprintf "bench.krylov.dense_s.n1_%d" n1)) t_dense;
      Obs.Metrics.set
        (Obs.Metrics.gauge (Printf.sprintf "bench.krylov.krylov_s.n1_%d" n1))
        t_krylov;
      Obs.Metrics.set (Obs.Metrics.gauge (Printf.sprintf "bench.krylov.speedup.n1_%d" n1)) ratio)
    sizes;
  Printf.printf "krylov | (dense work grows as n1^3 per factorization, krylov as n1 log n1)\n";
  (* Strong scaling of the krylov path on the domain pool: same sweep,
     same solver, jobs = 1 vs the requested --jobs.  The two runs'
     outputs are compared exactly -- the pool's fixed-chunk determinism
     contract makes bitwise identity a hard gate, not a tolerance. *)
  let jobs = Par.Pool.jobs () in
  if jobs > 1 then begin
    let scaling_sizes = if !smoke then [ 101 ] else [ 101; 161 ] in
    Printf.printf "krylov | strong scaling (krylov path, jobs 1 vs %d):\n" jobs;
    Obs.Metrics.set (Obs.Metrics.gauge "bench.krylov.par_jobs") (float_of_int jobs);
    List.iter
      (fun n1 ->
        let frozen = Circuit.Vco.default_params ~control:(fun _ -> 1.5) () in
        let orbit =
          Steady.Oscillator.find (Circuit.Vco.build frozen) ~n1 ~period_hint:(1. /. 0.75)
            (Circuit.Vco.initial_state frozen)
        in
        let run j =
          Par.Pool.set_jobs j;
          let t0 = Unix.gettimeofday () in
          let options = Wampde.Envelope.default_options ~n1 ~solver:Linalg.Structured.Krylov () in
          let res = Wampde.Envelope.simulate dae ~options ~t2_end ~h2 ~init:orbit in
          (res, Unix.gettimeofday () -. t0)
        in
        let res_1, t_1 = run 1 in
        let res_j, t_j = run jobs in
        Par.Pool.set_jobs jobs;
        let identical =
          res_1.Wampde.Envelope.omega = res_j.Wampde.Envelope.omega
          && res_1.Wampde.Envelope.slices = res_j.Wampde.Envelope.slices
        in
        let par_speedup = t_1 /. t_j in
        Printf.printf
          "krylov |   n1 = %3d: jobs 1 %7.3f s, jobs %d %7.3f s, speedup %.2fx, \
           bitwise-identical %b\n"
          n1 t_1 jobs t_j par_speedup identical;
        Obs.Metrics.set
          (Obs.Metrics.gauge (Printf.sprintf "bench.krylov.par_speedup.n1_%d" n1))
          par_speedup;
        Obs.Metrics.set (Obs.Metrics.gauge (Printf.sprintf "bench.krylov.par_s_jobs1.n1_%d" n1)) t_1;
        Obs.Metrics.set (Obs.Metrics.gauge (Printf.sprintf "bench.krylov.par_s_jobsN.n1_%d" n1)) t_j;
        if not identical then begin
          Printf.eprintf "krylov check FAILED: --jobs %d output differs from serial at n1 = %d\n"
            jobs n1;
          exit 1
        end)
      scaling_sizes
  end;
  if !check && !last_ratio < 1. then begin
    Printf.eprintf "krylov check FAILED: krylov slower than dense at largest size (%.2fx)\n"
      !last_ratio;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Ablations: design choices called out in DESIGN.md                   *)
(* ------------------------------------------------------------------ *)

let ablation_n1 () =
  (* spectral collocation converges exponentially in n1; FD4 only
     algebraically -- the reason `Spectral is the default *)
  let frozen = Circuit.Vco.default_params ~control:(fun _ -> 1.5) () in
  let dae = Circuit.Vco.build frozen in
  let ref_orbit =
    Steady.Oscillator.find dae ~n1:61 ~period_hint:(1. /. 0.75)
      (Circuit.Vco.initial_state frozen)
  in
  let f_ref = ref_orbit.Steady.Oscillator.omega in
  Printf.printf "ablation-n1 | unforced VCO frequency error vs collocation size (ref n1=61):\n";
  List.iter
    (fun n1 ->
      let orbit =
        Steady.Oscillator.find dae ~n1 ~period_hint:(1. /. 0.75)
          (Circuit.Vco.initial_state frozen)
      in
      Printf.printf "ablation-n1 |   n1 = %2d -> |f - f_ref| = %.2e MHz\n" n1
        (Float.abs (orbit.Steady.Oscillator.omega -. f_ref)))
    [ 9; 13; 17; 21; 25; 31 ];
  Printf.printf "ablation-n1 | (spectral accuracy: error falls by ~10x every few points)\n"

let ablation_h2 () =
  (* trapezoidal theta-method in t2 is 2nd order; BE 1st order *)
  let dae = Circuit.Vco.build (Lazy.force vco_a) in
  let orbit = Lazy.force orbit_a in
  let run theta h2 =
    let options = { (Lazy.force options) with Wampde.Envelope.theta } in
    let res = Wampde.Envelope.simulate dae ~options ~t2_end:20. ~h2 ~init:orbit in
    res.Wampde.Envelope.omega.(Array.length res.Wampde.Envelope.omega - 1)
  in
  let reference = run 0.5 0.025 in
  Printf.printf "ablation-h2 | omega(20us) error vs slow step (reference h2 = 0.025):\n";
  List.iter
    (fun h2 ->
      Printf.printf "ablation-h2 |   h2 = %4.2f  trapezoidal %.2e   backward-Euler %.2e\n" h2
        (Float.abs (run 0.5 h2 -. reference))
        (Float.abs (run 1.0 h2 -. reference)))
    [ 0.8; 0.4; 0.2; 0.1 ];
  Printf.printf
    "ablation-h2 | (trapezoidal error falls 4x per halving: order 2; BE only 2x: order 1)\n"

let ablation_solver () =
  (* dense LU vs matrix-free GMRES + block-Jacobi on the quasiperiodic
     system, as n2 grows *)
  let dae = Circuit.Vco.build (Lazy.force vco_a) in
  let env =
    Wampde.Envelope.simulate dae ~options:(Lazy.force options) ~t2_end:200. ~h2:0.5
      ~init:(Lazy.force orbit_a)
  in
  Printf.printf "ablation-solver | quasiperiodic Newton: dense LU vs GMRES+block-Jacobi:\n";
  List.iter
    (fun n2 ->
      let guess = Wampde.Quasiperiodic.guess_from_envelope env ~p2:40. ~n2 ~t_from:160. in
      let time solver =
        let t0 = Sys.time () in
        let _ =
          Wampde.Quasiperiodic.solve dae ~linear_solver:solver ~options:(Lazy.force options)
            ~p2:40. ~n2 ~guess ()
        in
        Sys.time () -. t0
      in
      let td = time `Dense and tg = time `Gmres in
      let unknowns = n2 * ((n1 * 4) + 1) in
      Printf.printf
        "ablation-solver |   n2 = %2d (%4d unknowns): dense %6.2f s, gmres %6.2f s (%.1fx)\n" n2
        unknowns td tg (td /. tg))
    [ 7; 11; 15; 21 ];
  Printf.printf
    "ablation-solver | (iterative linear algebra scales as the paper's [Saa96] reference)\n"

(* ------------------------------------------------------------------ *)
(* Bechamel kernel timings                                             *)
(* ------------------------------------------------------------------ *)

let kernel_timings () =
  let open Bechamel in
  let open Toolkit in
  Printf.printf "\n== kernel timings (Bechamel, ns/run) ==\n%!";
  let dae_a = Circuit.Vco.build (Lazy.force vco_a) in
  let orbit = Lazy.force orbit_a in
  let opts = Lazy.force options in
  let x_state = [| 1.5; -0.3; 0.9; 0.05 |] in
  let lu_mat =
    Linalg.Mat.init 101 101 (fun i j ->
        (if i = j then 10. else 0.) +. sin (float_of_int ((i * 7) + j)))
  in
  let sig1024 =
    Linalg.Cx.Cvec.init 1024 (fun i -> Linalg.Cx.cx (sin (0.1 *. float_of_int i)) 0.)
  in
  let tests =
    [
      Test.make ~name:"vco_f_eval" (Staged.stage (fun () -> dae_a.Dae.f ~t:1. x_state));
      Test.make ~name:"vco_jacobian" (Staged.stage (fun () -> dae_a.Dae.df ~t:1. x_state));
      Test.make ~name:"lu_factor_101" (Staged.stage (fun () -> Linalg.Lu.factor lu_mat));
      Test.make ~name:"fft_1024" (Staged.stage (fun () -> Fourier.Fft.fft sig1024));
      Test.make ~name:"transient_step"
        (Staged.stage (fun () ->
             Transient.theta_step dae_a ~theta:0.5 ~t:0. ~h:1.333e-3 x_state));
      Test.make ~name:"wampde_slow_step"
        (Staged.stage (fun () ->
             Wampde.Envelope.simulate dae_a ~options:opts ~t2_end:0.4 ~h2:0.4 ~init:orbit));
    ]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) () in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ t ] -> Printf.printf "  %-18s %12.0f ns/run\n%!" name t
          | _ -> Printf.printf "  %-18s (no estimate)\n%!" name)
        results)
    tests

let robust () =
  (* solver-hardening sweep: a sinh-limited one-pole system under deep
     fast-tone amplitude modulation, solved for the biperiodic steady
     state from a cold (zero) guess.  As the nonlinearity stiffens,
     plain damped Newton lands on the sinh cliff and its line search
     stalls; the globalization cascade escalates and keeps solving.
     The numbers behind the hard-case table in EXPERIMENTS.md. *)
  let solve_case beta cascade =
    let p1 = 1. and p2 = 20. in
    let dae =
      Dae.of_ode ~dim:1 ~rhs:(fun ~t:_ x -> [| -.(sinh (beta *. x.(0))) /. beta |]) ()
    in
    let a t2 = beta *. (1. +. (0.9 *. sin (two_pi *. t2 /. p2))) in
    let sys =
      {
        Mpde.dae;
        p1;
        b_fast = (fun ~t1 ~t2 -> [| -.(a t2) *. sin (two_pi *. t1 /. p1) |]);
      }
    in
    let n1 = 11 and n2 = 11 in
    let guess = Array.init n2 (fun _ -> Array.init n1 (fun _ -> [| 0. |])) in
    let t0 = Sys.time () in
    let outcome =
      Obs.Metrics.with_isolated (fun () ->
          Obs.set_enabled true;
          let count name = Obs.Metrics.count (Obs.Metrics.counter name) in
          match Mpde.quasiperiodic ?cascade sys ~n1 ~n2 ~p2 ~guess with
          | _ ->
            let winner =
              List.find_opt
                (fun s -> count ("newton.strategy." ^ Nonlin.Polyalg.strategy_name s) > 0)
                (List.rev Nonlin.Polyalg.default_cascade)
            in
            let iters = count "newton.iterations" + count "trust_region.iterations"
                        + count "ptc.iterations" in
            `Solved (winner, iters)
          | exception Mpde.Solve_failure _ -> `Failed)
    in
    (outcome, Sys.time () -. t0)
  in
  let betas = if !smoke then [ 200.; 500. ] else [ 100.; 200.; 300.; 400.; 500.; 600. ] in
  Printf.printf
    "robust | strong-modulation sinh quasiperiodic from cold start: plain Newton vs cascade\n";
  Printf.printf "robust |   beta    plain Newton          cascade\n";
  List.iter
    (fun beta ->
      let plain, t_plain = solve_case beta (Some [ Nonlin.Polyalg.Damped ]) in
      let full, t_full = solve_case beta None in
      Printf.printf "robust |   %4.0f    %-18s  %s\n" beta
        (match plain with
        | `Failed -> "FAIL"
        | `Solved (_, iters) -> Printf.sprintf "ok %3d it %.2fs" iters t_plain)
        (match full with
        | `Failed -> "FAIL"
        | `Solved (winner, iters) ->
          Printf.sprintf "ok via %-12s %3d it %.2fs"
            (match winner with
            | Some s -> Nonlin.Polyalg.strategy_name s
            | None -> "?")
            iters t_full))
    betas;
  (* pool scaling of the hardest cascade case: the globalized solves
     run the same parallel kernels, and determinism means the iteration
     counts (not just the tolerances) must agree between job counts *)
  let jobs = Par.Pool.jobs () in
  if jobs > 1 then begin
    let beta = List.fold_left Float.max 0. betas in
    let scale j =
      Par.Pool.set_jobs j;
      let t0 = Unix.gettimeofday () in
      let outcome, _ = solve_case beta None in
      (outcome, Unix.gettimeofday () -. t0)
    in
    let o_1, t_1 = scale 1 in
    let o_j, t_j = scale jobs in
    Par.Pool.set_jobs jobs;
    let par_speedup = t_1 /. t_j in
    Printf.printf "robust | strong scaling (beta = %.0f cascade): jobs 1 %.2fs, jobs %d %.2fs, \
                   speedup %.2fx, identical outcome %b\n"
      beta t_1 jobs t_j par_speedup (o_1 = o_j);
    Obs.Metrics.set (Obs.Metrics.gauge "bench.robust.par_speedup") par_speedup;
    if o_1 <> o_j then begin
      Printf.eprintf "robust check FAILED: --jobs %d outcome differs from serial\n" jobs;
      exit 1
    end
  end;
  Printf.printf
    "robust | (the cascade keeps solving after plain Newton starts failing; trust region wins)\n"

let health () =
  (* numerical-health monitors vs t1 resolution: the VCO-A envelope run
     of Figs. 8-9 swept over n1.  Coarse grids light up the
     under-resolution monitor (spectral tail energy above tolerance);
     generous grids trip the over-resolution monitor; GMRES quality
     (iterations per solve against the restart window) tracks the
     preconditioner as the grid grows.  The numbers behind the health
     table in EXPERIMENTS.md. *)
  let sizes = if !smoke then [ 9; 15 ] else [ 9; 15; 25; 41 ] in
  let t2_end = if !smoke then 10. else 30. in
  let h2 = 0.4 in
  let dae = Circuit.Vco.build (Lazy.force vco_a) in
  Printf.printf
    "health | VCO-A envelope t1-grid and solver health vs n1 (t2_end = %g us, h2 = %g us):\n"
    t2_end h2;
  Printf.printf "health |    n1   tail energy   harmonics used   gmres it/solve   warnings\n";
  List.iter
    (fun n1 ->
      let frozen = Circuit.Vco.default_params ~control:(fun _ -> 1.5) () in
      let orbit =
        Steady.Oscillator.find (Circuit.Vco.build frozen) ~n1 ~period_hint:(1. /. 0.75)
          (Circuit.Vco.initial_state frozen)
      in
      let tail, needed, avail, gmres_per_solve, warnings =
        Obs.Metrics.with_isolated (fun () ->
            Obs.set_enabled true;
            Obs.Health.reset ();
            let options =
              Wampde.Envelope.default_options ~n1 ~solver:Linalg.Structured.Krylov ()
            in
            let _ = Wampde.Envelope.simulate dae ~options ~t2_end ~h2 ~init:orbit in
            let g name = Obs.Metrics.value (Obs.Metrics.gauge name) in
            let c name = Obs.Metrics.count (Obs.Metrics.counter name) in
            let solves = c "gmres.solves" in
            ( g "health.tail_energy",
              g "health.effective_harmonics",
              g "health.harmonics_available",
              (if solves = 0 then nan
               else float_of_int (c "gmres.iterations") /. float_of_int solves),
              c "health.warnings" ))
      in
      let gmres_col =
        if Float.is_nan gmres_per_solve then "  dense" else Printf.sprintf "%7.1f" gmres_per_solve
      in
      Printf.printf "health |   %3d   %.3e        %2.0f / %-2.0f        %s          %d\n" n1 tail
        needed avail gmres_col warnings;
      let set name v = Obs.Metrics.set (Obs.Metrics.gauge (Printf.sprintf "bench.health.%s.n1_%d" name n1)) v in
      set "tail_energy" tail;
      set "effective_harmonics" needed;
      set "gmres_iters_per_solve" gmres_per_solve;
      set "warnings" (float_of_int warnings))
    sizes;
  Printf.printf
    "health | (tail energy falls exponentially with n1; the monitors flag both coarse and \
     wasteful grids)\n"

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("speedup", speedup);
    ("krylov", krylov_bench);
    ("mpdefm", mpdefm);
    ("lock", lock);
    ("ablation-n1", ablation_n1);
    ("ablation-h2", ablation_h2);
    ("ablation-solver", ablation_solver);
    ("robust", robust);
    ("health", health);
  ]

let () =
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | [] -> ()
    | "--csv" :: rest ->
      csv := true;
      parse rest
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | "--check" :: rest ->
      check := true;
      parse rest
    | "--only" :: id :: rest ->
      only := Some id;
      parse rest
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
      | Some j when j >= 1 -> Par.Pool.set_jobs j
      | _ ->
        Printf.eprintf "--jobs: expected a positive integer, got %s\n" n;
        exit 1);
      parse rest
    | "--list" :: _ ->
      List.iter (fun (id, _) -> print_endline id) experiments;
      exit 0
    | _ :: rest -> parse rest
  in
  parse args;
  let selected =
    match !only with
    | None -> experiments
    | Some id -> List.filter (fun (name, _) -> name = id) experiments
  in
  if selected = [] then begin
    Printf.eprintf "unknown experiment id; use --list\n";
    exit 1
  end;
  (* Per-experiment solver-work accounting.  Metrics are reset before
     each experiment, so shared lazy setups (orbits, envelope runs) are
     charged to the first experiment that forces them. *)
  Obs.set_enabled true;
  let work = ref [] in
  List.iter
    (fun (id, run) ->
      Obs.Metrics.reset ();
      let gc0 = Gc.quick_stat () in
      let t0 = Unix.gettimeofday () in
      run ();
      let wall = Unix.gettimeofday () -. t0 in
      let gc1 = Gc.quick_stat () in
      (* allocation gauges feed the trend script alongside the scoped
         counters already embedded in the metrics snapshot *)
      let alloc_words =
        gc1.Gc.minor_words -. gc0.Gc.minor_words
        +. (gc1.Gc.major_words -. gc0.Gc.major_words)
        -. (gc1.Gc.promoted_words -. gc0.Gc.promoted_words)
      in
      Obs.Metrics.set (Obs.Metrics.gauge "bench.alloc_words") alloc_words;
      Obs.Metrics.set
        (Obs.Metrics.gauge "bench.gc.minor_collections")
        (float_of_int (gc1.Gc.minor_collections - gc0.Gc.minor_collections));
      Obs.Metrics.set
        (Obs.Metrics.gauge "bench.gc.major_collections")
        (float_of_int (gc1.Gc.major_collections - gc0.Gc.major_collections));
      let c name = Obs.Metrics.count (Obs.Metrics.counter name) in
      Printf.printf
        "%s | solver work: %d newton iters, %d lu factors, %d gmres iters, %d rejects | wall \
         %.2f s | alloc %.1f Mw\n"
        id (c "newton.iterations") (c "lu.factor") (c "gmres.iterations")
        (c "transient.rejects" + c "envelope.rejects")
        wall (alloc_words /. 1e6);
      if !json then work := (id, wall, Obs.Metrics.to_json ()) :: !work;
      print_newline ())
    selected;
  Obs.set_enabled false;
  if !json then begin
    let tm = Unix.localtime (Unix.time ()) in
    let fname =
      Printf.sprintf "BENCH_%04d-%02d-%02d.json" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
        tm.Unix.tm_mday
    in
    let oc = open_out fname in
    let entries = List.rev !work in
    let last = List.length entries - 1 in
    output_string oc "[\n";
    List.iteri
      (fun i (id, wall, metrics) ->
        Printf.fprintf oc "  {\"id\":\"%s\",\"wall_s\":%.6f,\"metrics\":%s}%s\n" id wall metrics
          (if i = last then "" else ","))
      entries;
    output_string oc "]\n";
    close_out oc;
    Printf.eprintf "wrote %s\n" fname
  end;
  if !only = None && not !csv then kernel_timings ()
